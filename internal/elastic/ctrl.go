// The TCP control channel: the same Coordinator state machine, reachable
// over a real socket. A CtrlServer wraps an in-process Coordinator and
// serves the Membership protocol — heartbeats, epoch-numbered view
// reads, join requests, rendezvous gathers — to Client instances over
// CRC32-C framed request/response messages (the control-plane sibling of
// tcpfabric's INCP data framing). The client retransmits over reconnects
// with bounded, jittered backoff, and the server dedupes the one
// non-idempotent operation (a completed gather) through a bounded result
// cache, so a request lost to a flapping connection converges instead of
// wedging the barrier.
//
// Partition safety is asymmetric by design: the coordinator side holds
// the one true epoch sequence, so "split-brain" can only mean a worker
// continuing to train while cut off from it. A Client that cannot reach
// the coordinator for PartitionAfter declares itself partitioned and
// fails closed — View() reports the caller evicted, collectives abort —
// so a partitioned minority halts while the majority (the side that can
// still reach the coordinator) reconfigures and continues. The server
// grades the silence for the failure detector: a dropped control
// connection marks the node link-down (partition suspected), heartbeats
// merely stopping on a live connection suggest a hung process.
package elastic

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"inceptionn/internal/fault"
)

// ErrPartitioned reports that the control channel has been unreachable
// for longer than the partition threshold: the caller must halt rather
// than keep training on a view it can no longer validate.
var ErrPartitioned = errors.New("elastic: control channel partitioned; halting to avoid split-brain")

// CtrlPeer is the pseudo node id of the coordinator endpoint for chaos
// addressing: fault.Link{Src: workerID, Dst: CtrlPeer} configures faults
// on a worker's control link.
const CtrlPeer = -1

// Control frame layout (little-endian):
//
//	u32 magic "INCC"
//	u8  kind, u8 status, u16 reserved
//	u32 request id
//	u32 payload length, payload bytes
//	u32 CRC32-C of all preceding bytes
const (
	ctrlMagic      = 0x494E4343
	ctrlHeaderLen  = 16
	ctrlMaxPayload = 256 << 20
)

const (
	ckHello byte = iota + 1
	ckBeat
	ckView
	ckAwaitEvent
	ckGather
	ckReportDead
	ckReportAnomaly
	ckDepart
	ckProposeHalt
	ckHaltIter
	ckJoin
	ckProgress // server -> client: a parked gather is still alive
)

const (
	stOK byte = iota
	stEpochChanged
	stEvicted
	stClosed
	stError
)

var ctrlCastagnoli = crc32.MakeTable(crc32.Castagnoli)

func writeCtrlFrame(w *bufio.Writer, kind, status byte, reqID uint32, payload []byte) error {
	var h [ctrlHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], ctrlMagic)
	h[4], h[5] = kind, status
	binary.LittleEndian.PutUint32(h[8:], reqID)
	binary.LittleEndian.PutUint32(h[12:], uint32(len(payload)))
	crc := crc32.New(ctrlCastagnoli)
	crc.Write(h[:])
	crc.Write(payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if _, err := w.Write(tail[:]); err != nil {
		return err
	}
	return w.Flush()
}

func readCtrlFrame(r *bufio.Reader) (kind, status byte, reqID uint32, payload []byte, err error) {
	var h [ctrlHeaderLen]byte
	if _, err = io.ReadFull(r, h[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	if binary.LittleEndian.Uint32(h[0:]) != ctrlMagic {
		return 0, 0, 0, nil, fmt.Errorf("elastic: bad control magic %08x", binary.LittleEndian.Uint32(h[0:]))
	}
	kind, status = h[4], h[5]
	reqID = binary.LittleEndian.Uint32(h[8:])
	plen := binary.LittleEndian.Uint32(h[12:])
	if plen > ctrlMaxPayload {
		return 0, 0, 0, nil, fmt.Errorf("elastic: control payload of %d bytes exceeds limit", plen)
	}
	payload = make([]byte, plen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	var tail [4]byte
	if _, err = io.ReadFull(r, tail[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	crc := crc32.New(ctrlCastagnoli)
	crc.Write(h[:])
	crc.Write(payload)
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != crc.Sum32() {
		return 0, 0, 0, nil, fmt.Errorf("elastic: control frame CRC mismatch (stored %08x, computed %08x)", stored, crc.Sum32())
	}
	return kind, status, reqID, payload, nil
}

// --- payload encoding -------------------------------------------------

func appendU32(b []byte, v uint32) []byte {
	var x [4]byte
	binary.LittleEndian.PutUint32(x[:], v)
	return append(b, x[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var x [8]byte
	binary.LittleEndian.PutUint64(x[:], v)
	return append(b, x[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// nilF32s marks a nil float slice on the wire (distinct from empty).
const nilF32s = ^uint32(0)

func appendF32s(b []byte, vals []float32) []byte {
	if vals == nil {
		return appendU32(b, nilF32s)
	}
	b = appendU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = appendU32(b, math.Float32bits(v))
	}
	return b
}

func appendItem(b []byte, it Item) []byte {
	b = appendU64(b, uint64(it.Iter))
	if it.Joining {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU64(b, it.Cursor)
	return appendF32s(b, it.Residual)
}

func appendView(b []byte, v View) []byte {
	b = appendU32(b, uint32(v.Epoch))
	b = appendU32(b, uint32(len(v.Members)))
	for _, m := range v.Members {
		b = appendU32(b, uint32(m))
	}
	return b
}

// ctrlDec is a cursor over a received payload; the first decode error
// sticks and every later read returns zero values.
type ctrlDec struct {
	b   []byte
	off int
	err error
}

func (d *ctrlDec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *ctrlDec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *ctrlDec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *ctrlDec) str() string {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *ctrlDec) f32s() []float32 {
	n := d.u32()
	if n == nilF32s {
		return nil
	}
	if d.err != nil || d.off+4*int(n) > len(d.b) {
		d.fail()
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return out
}

func (d *ctrlDec) item() Item {
	it := Item{Iter: int64(d.u64()), Joining: d.u8() != 0, Cursor: d.u64()}
	it.Residual = d.f32s()
	return it
}

func (d *ctrlDec) view() View {
	v := View{Epoch: int(d.u32())}
	n := d.u32()
	if d.err != nil || n > 1<<20 {
		d.fail()
		return View{}
	}
	v.Members = make([]int, n)
	for i := range v.Members {
		v.Members[i] = int(d.u32())
	}
	return v
}

func (d *ctrlDec) fail() {
	if d.err == nil {
		d.err = errors.New("elastic: truncated control payload")
	}
}

// --- server -----------------------------------------------------------

// CtrlServer serves a Coordinator's Membership protocol over TCP.
type CtrlServer struct {
	coord *Coordinator
	ln    net.Listener

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	completed map[string][]byte // gather key -> encoded result payload
	order     []string          // FIFO eviction for the gather cache
}

// gatherCacheCap bounds the completed-gather replay cache. Keys carry the
// epoch and iteration, so entries are never revisited once every member
// has moved past them; the cap only needs to cover the reconnect window.
const gatherCacheCap = 256

// ServeCtrl starts a control-channel server for coord on addr
// (host:port; port 0 picks an ephemeral port). Close the server before
// closing the coordinator.
func ServeCtrl(addr string, coord *Coordinator) (*CtrlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("elastic: control listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &CtrlServer{
		coord:     coord,
		ln:        ln,
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
		completed: make(map[string][]byte),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address for clients to dial.
func (s *CtrlServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, drops every client connection, and waits for
// the handlers to drain.
func (s *CtrlServer) Close() {
	s.cancel()
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *CtrlServer) closing() bool {
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

func (s *CtrlServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// handle runs one client connection: a hello identifying the worker,
// then a serial request/response loop. The connection's drop (for any
// reason but a clean server shutdown) marks the worker link-down for the
// failure detector's suspect grading.
func (s *CtrlServer) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, _, reqID, payload, err := readCtrlFrame(br)
	if err != nil || kind != ckHello {
		return
	}
	dec := &ctrlDec{b: payload}
	id := int(dec.u32())
	if dec.err != nil {
		return
	}
	if err := writeCtrlFrame(bw, ckHello, stOK, reqID, appendU32(nil, uint32(s.coord.universe))); err != nil {
		return
	}
	s.coord.SetLinkDown(id, nil)
	conn.SetReadDeadline(time.Time{})

	connCtx, connCancel := context.WithCancel(s.ctx)
	defer connCancel()
	for {
		kind, _, reqID, payload, err := readCtrlFrame(br)
		if err != nil {
			if !s.closing() && !errors.Is(err, io.EOF) {
				s.coord.SetLinkDown(id, err)
			} else if !s.closing() {
				s.coord.SetLinkDown(id, errors.New("control connection closed"))
			}
			return
		}
		if err := s.dispatch(connCtx, conn, bw, id, kind, reqID, payload); err != nil {
			if !s.closing() {
				s.coord.SetLinkDown(id, err)
			}
			return
		}
	}
}

// reply writes one response frame under a write deadline.
func reply(conn net.Conn, bw *bufio.Writer, kind, status byte, reqID uint32, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetWriteDeadline(time.Time{})
	return writeCtrlFrame(bw, kind, status, reqID, payload)
}

// statusOf maps coordinator errors onto wire status codes.
func statusOf(err error) (byte, []byte) {
	switch {
	case err == nil:
		return stOK, nil
	case errors.Is(err, ErrEpochChanged):
		return stEpochChanged, nil
	case errors.Is(err, ErrEvicted):
		return stEvicted, nil
	case errors.Is(err, ErrClosed):
		return stClosed, nil
	default:
		return stError, appendStr(nil, err.Error())
	}
}

func (s *CtrlServer) dispatch(connCtx context.Context, conn net.Conn, bw *bufio.Writer, id int, kind byte, reqID uint32, payload []byte) error {
	dec := &ctrlDec{b: payload}
	switch kind {
	case ckBeat:
		s.coord.Beat(id)
		return reply(conn, bw, ckBeat, stOK, reqID, nil)
	case ckView:
		return reply(conn, bw, ckView, stOK, reqID, appendView(nil, s.coord.View()))
	case ckAwaitEvent:
		after := int(dec.u32())
		timeoutMs := dec.u32()
		beat := dec.u8() != 0
		if dec.err != nil {
			return dec.err
		}
		if beat {
			s.coord.Beat(id)
		}
		wctx, wcancel := context.WithTimeout(connCtx, time.Duration(timeoutMs)*time.Millisecond)
		v, fatal, err := s.coord.WaitEvent(wctx, after)
		wcancel()
		body := make([]byte, 0, 16)
		switch {
		case err == nil:
			body = append(body, 1)
			if fatal {
				body = append(body, 1)
			} else {
				body = append(body, 0)
			}
			body = appendView(body, v)
			return reply(conn, bw, ckAwaitEvent, stOK, reqID, body)
		case errors.Is(err, context.DeadlineExceeded):
			// No event inside the poll window: not an error, just try again.
			body = append(body, 0, 0)
			body = appendView(body, s.coord.View())
			return reply(conn, bw, ckAwaitEvent, stOK, reqID, body)
		default:
			st, body := statusOf(err)
			return reply(conn, bw, ckAwaitEvent, st, reqID, body)
		}
	case ckGather:
		epoch := int(dec.u32())
		key := dec.str()
		item := dec.item()
		if dec.err != nil {
			return dec.err
		}
		return s.gather(connCtx, conn, bw, id, reqID, epoch, key, item)
	case ckReportDead:
		node := int(dec.u32())
		msg := dec.str()
		if dec.err != nil {
			return dec.err
		}
		s.coord.ReportDead(node, errors.New(msg))
		return reply(conn, bw, ckReportDead, stOK, reqID, nil)
	case ckReportAnomaly:
		node := int(dec.u32())
		msg := dec.str()
		if dec.err != nil {
			return dec.err
		}
		s.coord.ReportAnomaly(node, errors.New(msg))
		return reply(conn, bw, ckReportAnomaly, stOK, reqID, nil)
	case ckDepart:
		s.coord.Depart(id)
		return reply(conn, bw, ckDepart, stOK, reqID, nil)
	case ckProposeHalt:
		own := int(int64(dec.u64()))
		if dec.err != nil {
			return dec.err
		}
		h := s.coord.ProposeHalt(own)
		return reply(conn, bw, ckProposeHalt, stOK, reqID, appendU64(nil, uint64(int64(h))))
	case ckHaltIter:
		return reply(conn, bw, ckHaltIter, stOK, reqID, appendU64(nil, uint64(int64(s.coord.HaltIter()))))
	case ckJoin:
		v, err := s.coord.Join(id)
		if err != nil {
			st, body := statusOf(err)
			return reply(conn, bw, ckJoin, st, reqID, body)
		}
		return reply(conn, bw, ckJoin, stOK, reqID, appendView(nil, v))
	default:
		return fmt.Errorf("elastic: unknown control request kind %d", kind)
	}
}

// gather serves one rendezvous request. A gather legitimately parks until
// the last member arrives, so the handler streams progress frames while
// blocked — the client reads them as liveness — and caches the encoded
// result on completion so a client that lost its connection mid-park can
// retransmit the request and still receive the outcome (its value is
// already registered; re-registering the same value is idempotent).
func (s *CtrlServer) gather(connCtx context.Context, conn net.Conn, bw *bufio.Writer, id int, reqID uint32, epoch int, key string, item Item) error {
	s.mu.Lock()
	cached, ok := s.completed[key]
	s.mu.Unlock()
	if ok {
		return reply(conn, bw, ckGather, stOK, reqID, cached)
	}

	type result struct {
		vals map[int]interface{}
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		vals, err := s.coord.Gather(connCtx, id, epoch, key, item)
		resCh <- result{vals, err}
	}()
	tick := time.NewTicker(300 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case res := <-resCh:
			if res.err != nil {
				st, body := statusOf(res.err)
				return reply(conn, bw, ckGather, st, reqID, body)
			}
			body := appendU32(nil, uint32(len(res.vals)))
			for m, v := range res.vals {
				it, ok := v.(Item)
				if !ok {
					st, eb := statusOf(fmt.Errorf("elastic: gather %q holds a non-Item value from member %d", key, m))
					return reply(conn, bw, ckGather, st, reqID, eb)
				}
				body = appendU32(body, uint32(m))
				body = appendItem(body, it)
			}
			s.mu.Lock()
			if _, dup := s.completed[key]; !dup {
				s.completed[key] = body
				s.order = append(s.order, key)
				if len(s.order) > gatherCacheCap {
					delete(s.completed, s.order[0])
					s.order = s.order[1:]
				}
			}
			s.mu.Unlock()
			return reply(conn, bw, ckGather, stOK, reqID, body)
		case <-tick.C:
			if err := reply(conn, bw, ckProgress, stOK, reqID, nil); err != nil {
				// The client is gone; abandon the park so the coordinator
				// stops heartbeating on its behalf.
				return err
			}
		case <-connCtx.Done():
			return connCtx.Err()
		}
	}
}

// --- client -----------------------------------------------------------

// CtrlOptions tunes a control-channel client.
type CtrlOptions struct {
	// PartitionAfter declares the client partitioned when every control
	// RPC has failed for this long; the client then fails closed (the
	// minority-halt rule). Default 2s.
	PartitionAfter time.Duration
	// CallTimeout bounds one request/response attempt (progress frames
	// extend it). Default 2s.
	CallTimeout time.Duration
	// Chaos, if non-nil, injects deterministic faults into the control
	// link (fault.Link{Src: id, Dst: CtrlPeer}): a Drop verdict breaks
	// the connection as a real partition would, exercising reconnect,
	// backoff, and the partition detector.
	Chaos *fault.Injector
	// Seq, if non-nil, is the shared chaos sequence counter for this
	// worker's control link, persisting across client generations (a
	// restarted worker process keeps advancing the same fault schedule).
	// Nil gives the client a private counter starting at zero.
	Seq *atomic.Uint64
}

func (o CtrlOptions) withDefaults() CtrlOptions {
	if o.PartitionAfter <= 0 {
		o.PartitionAfter = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.Seq == nil {
		o.Seq = new(atomic.Uint64)
	}
	return o
}

// ctrlConn is one client connection with its serial request/response
// discipline (the worker issues one RPC at a time; the watcher owns a
// second connection so its polls never queue behind a parked gather).
// rpcMu serializes whole RPC rounds; mu guards only the connection
// pointer, so Close can break an in-flight round by closing the socket
// without waiting for it.
type ctrlConn struct {
	rpcMu sync.Mutex
	mu    sync.Mutex
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	reqID uint32
}

// snapshot returns the live connection, if any. Only the RPC holder
// (under rpcMu) advances reqID or replaces the connection.
func (cc *ctrlConn) snapshot() (net.Conn, *bufio.Reader, *bufio.Writer) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.conn, cc.br, cc.bw
}

func (cc *ctrlConn) install(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	cc.mu.Lock()
	cc.conn, cc.br, cc.bw = conn, br, bw
	cc.mu.Unlock()
}

// drop closes and clears the connection if it is still the given one (a
// concurrent closer or reconnect may have moved on already).
func (cc *ctrlConn) drop(conn net.Conn) {
	cc.mu.Lock()
	if cc.conn == conn && conn != nil {
		conn.Close()
		cc.conn, cc.br, cc.bw = nil, nil, nil
	}
	cc.mu.Unlock()
}

func (cc *ctrlConn) closeAny() {
	cc.mu.Lock()
	if cc.conn != nil {
		cc.conn.Close()
		cc.conn, cc.br, cc.bw = nil, nil, nil
	}
	cc.mu.Unlock()
}

// Client speaks the Membership protocol to a CtrlServer. It caches the
// last observed view and mirrors the coordinator's epoch-context
// semantics locally: a death event cancels the current context, a
// departure or join does not.
type Client struct {
	id       int
	universe int
	addr     string
	opts     CtrlOptions

	main  ctrlConn
	watch ctrlConn

	lastOK atomic.Int64 // unix nanos of the last successful RPC
	part   atomic.Bool  // sticky: the client has failed closed

	mu        sync.Mutex
	view      View
	epochCtx  context.Context
	epochStop context.CancelFunc

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ Membership = (*Client)(nil)

// DialCtrl connects worker id to a control server and starts the event
// watcher. The returned client implements Membership.
func DialCtrl(addr string, id int, opts CtrlOptions) (*Client, error) {
	ectx, estop := context.WithCancel(context.Background())
	cl := &Client{
		id:        id,
		addr:      addr,
		opts:      opts.withDefaults(),
		epochCtx:  ectx,
		epochStop: estop,
		closed:    make(chan struct{}),
	}
	cl.lastOK.Store(time.Now().UnixNano())
	// The first view read verifies the server is reachable and primes the
	// cache (and, under chaos, lets a dial inside a partition window fail
	// the way a real unreachable coordinator would).
	_, body, err := cl.call(context.Background(), &cl.main, ckView, nil)
	if err != nil {
		estop()
		cl.closeConns()
		return nil, err
	}
	dec := &ctrlDec{b: body}
	v := dec.view()
	if dec.err != nil {
		estop()
		cl.closeConns()
		return nil, dec.err
	}
	cl.mu.Lock()
	cl.view = v
	cl.mu.Unlock()
	cl.wg.Add(1)
	go cl.watchLoop(v.Epoch)
	return cl, nil
}

// Close drops both connections and stops the watcher. It never touches
// the membership — call Depart first for a graceful exit.
func (cl *Client) Close() {
	cl.closeOnce.Do(func() {
		close(cl.closed)
		cl.closeConns()
	})
	cl.wg.Wait()
}

func (cl *Client) closeConns() {
	cl.main.closeAny()
	cl.watch.closeAny()
}

func (cl *Client) isClosed() bool {
	select {
	case <-cl.closed:
		return true
	default:
		return false
	}
}

// Partitioned reports whether the client has failed closed.
func (cl *Client) Partitioned() bool { return cl.part.Load() }

// declarePartition fails the client closed: the epoch context cancels
// (aborting any in-flight collective) and every later call behaves as if
// this node were evicted — which, on the majority side, it soon is.
func (cl *Client) declarePartition() {
	if cl.part.CompareAndSwap(false, true) {
		cl.epochStop()
		cl.closeConns()
	}
}

// noteFailure records one failed attempt and trips the partition
// detector when the channel has been dark past the threshold.
func (cl *Client) noteFailure() error {
	if time.Since(time.Unix(0, cl.lastOK.Load())) > cl.opts.PartitionAfter {
		cl.declarePartition()
		return ErrPartitioned
	}
	return nil
}

// retryDelay is the jittered backoff between reconnect attempts, keyed
// deterministically so simultaneous reconnects after a heal spread out
// instead of re-colliding.
func (cl *Client) retryDelay(attempt int) time.Duration {
	base := 10 * time.Millisecond << uint(attempt)
	if base > 200*time.Millisecond {
		base = 200 * time.Millisecond
	}
	h := uint64(cl.id)<<32 ^ uint64(attempt)
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	u := float64(h>>11) / float64(1 << 53)
	return time.Duration(float64(base) * (0.5 + 0.5*u))
}

// ensureConn dials and performs the hello handshake if the connection is
// down. Caller holds cc.rpcMu.
func (cl *Client) ensureConn(cc *ctrlConn) (net.Conn, *bufio.Reader, *bufio.Writer, error) {
	if conn, br, bw := cc.snapshot(); conn != nil {
		return conn, br, bw, nil
	}
	conn, err := net.DialTimeout("tcp", cl.addr, cl.opts.CallTimeout)
	if err != nil {
		return nil, nil, nil, err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	cc.reqID++
	conn.SetDeadline(time.Now().Add(cl.opts.CallTimeout))
	if err := writeCtrlFrame(bw, ckHello, stOK, cc.reqID, appendU32(nil, uint32(cl.id))); err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	kind, _, _, body, err := readCtrlFrame(br)
	if err != nil || kind != ckHello {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("elastic: unexpected hello response kind %d", kind)
		}
		return nil, nil, nil, err
	}
	dec := &ctrlDec{b: body}
	if u := int(dec.u32()); dec.err == nil {
		cl.mu.Lock()
		cl.universe = u
		cl.mu.Unlock()
	}
	conn.SetDeadline(time.Time{})
	cc.install(conn, br, bw)
	if cl.isClosed() || cl.part.Load() {
		// Lost the race with Close/partition: do not resurrect a socket
		// the closer already swept.
		cc.drop(conn)
		return nil, nil, nil, ErrClosed
	}
	return conn, br, bw, nil
}

// attempt performs one request/response round trip on cc. Progress
// frames extend the response deadline; responses to abandoned requests
// are skipped by request id.
func (cl *Client) attempt(ctx context.Context, cc *ctrlConn, kind byte, payload []byte) (byte, []byte, error) {
	if ch := cl.opts.Chaos; ch != nil {
		seq := cl.opts.Seq.Add(1)
		if ch.Decide(cl.id, CtrlPeer, seq, 0).Drop {
			// The partition eats the request. Break the connection like a
			// real link failure so the server grades the silence correctly,
			// and pace the failure loop like a dial timeout would.
			cc.closeAny()
			select {
			case <-time.After(2 * time.Millisecond):
			case <-cl.closed:
			}
			return 0, nil, errors.New("elastic: control frame lost (injected)")
		}
	}
	conn, br, bw, err := cl.ensureConn(cc)
	if err != nil {
		return 0, nil, err
	}
	cc.reqID++
	want := cc.reqID
	conn.SetWriteDeadline(time.Now().Add(cl.opts.CallTimeout))
	if err := writeCtrlFrame(bw, kind, stOK, want, payload); err != nil {
		cc.drop(conn)
		return 0, nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	deadline := time.Now().Add(cl.opts.CallTimeout)
	for {
		conn.SetReadDeadline(deadline)
		rkind, status, rid, body, err := readCtrlFrame(br)
		if err != nil {
			cc.drop(conn)
			return 0, nil, err
		}
		if rid != want {
			continue // response to an abandoned earlier request
		}
		if rkind == ckProgress {
			// The server is parked on our behalf (a gather waiting for the
			// last member): alive, just not done. Extend the deadline, and
			// honor the caller's context so an aborting run lets go.
			if err := ctx.Err(); err != nil {
				cc.drop(conn)
				return 0, nil, err
			}
			deadline = time.Now().Add(cl.opts.CallTimeout)
			continue
		}
		conn.SetReadDeadline(time.Time{})
		cl.lastOK.Store(time.Now().UnixNano())
		return status, body, nil
	}
}

// call runs one RPC with reconnect-and-retransmit until it succeeds, the
// context ends, the client closes, or the partition detector trips.
func (cl *Client) call(ctx context.Context, cc *ctrlConn, kind byte, payload []byte) (byte, []byte, error) {
	cc.rpcMu.Lock()
	defer cc.rpcMu.Unlock()
	for attempt := 0; ; attempt++ {
		if cl.part.Load() {
			return 0, nil, ErrPartitioned
		}
		if cl.isClosed() {
			return 0, nil, ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		status, body, err := cl.attempt(ctx, cc, kind, payload)
		if err == nil {
			return status, body, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, nil, err
		}
		if perr := cl.noteFailure(); perr != nil {
			return 0, nil, perr
		}
		select {
		case <-time.After(cl.retryDelay(attempt)):
		case <-cl.closed:
			return 0, nil, ErrClosed
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
}

// statusErr maps a response status back onto the coordinator's errors.
func statusErr(status byte, body []byte) error {
	switch status {
	case stOK:
		return nil
	case stEpochChanged:
		return ErrEpochChanged
	case stEvicted:
		return ErrEvicted
	case stClosed:
		return ErrClosed
	default:
		dec := &ctrlDec{b: body}
		msg := dec.str()
		if dec.err != nil || msg == "" {
			msg = "control request failed"
		}
		return errors.New(msg)
	}
}

// watchLoop polls the server for membership events on its own
// connection, mirroring epoch transitions into the local view cache and
// epoch context. It never beats on the worker's behalf: liveness must
// come from the worker's own Beat calls (or a gather parked for it), or
// a hung worker would look alive forever.
func (cl *Client) watchLoop(after int) {
	defer cl.wg.Done()
	for !cl.isClosed() && !cl.part.Load() {
		req := appendU32(nil, uint32(after))
		req = appendU32(req, 1000) // server-side poll window, ms
		req = append(req, 0)       // no beat
		status, body, err := cl.call(context.Background(), &cl.watch, ckAwaitEvent, req)
		if err != nil {
			return // closed or partitioned; declarePartition already fired
		}
		if status != stOK {
			if errors.Is(statusErr(status, body), ErrClosed) {
				return
			}
			continue
		}
		dec := &ctrlDec{b: body}
		changed := dec.u8() != 0
		fatal := dec.u8() != 0
		v := dec.view()
		if dec.err != nil || !changed {
			continue
		}
		cl.mu.Lock()
		cl.view = v
		if fatal && !cl.part.Load() {
			// A death doomed the superseded epochs' collectives: cancel the
			// local epoch context exactly as the coordinator cancels its own.
			cl.epochStop()
			cl.epochCtx, cl.epochStop = context.WithCancel(context.Background())
		}
		cl.mu.Unlock()
		after = v.Epoch
	}
}

// Beat implements Membership. It is best-effort by design — a single
// failed attempt only advances the partition detector; the worker keeps
// training until View tells it otherwise.
func (cl *Client) Beat(id int) {
	if cl.part.Load() || cl.isClosed() {
		return
	}
	cl.main.rpcMu.Lock()
	defer cl.main.rpcMu.Unlock()
	if _, _, err := cl.attempt(context.Background(), &cl.main, ckBeat, nil); err != nil {
		cl.noteFailure()
	}
}

// View implements Membership. A partitioned client reports the last
// known view without itself: it cannot distinguish being evicted from
// being cut off, and halting is the only safe reading of either.
func (cl *Client) View() View {
	if !cl.part.Load() && !cl.isClosed() {
		status, body, err := cl.call(context.Background(), &cl.main, ckView, nil)
		if err == nil && status == stOK {
			dec := &ctrlDec{b: body}
			if v := dec.view(); dec.err == nil {
				cl.mu.Lock()
				cl.view = v
				cl.mu.Unlock()
				return v
			}
		}
	}
	cl.mu.Lock()
	v := cl.view.clone()
	cl.mu.Unlock()
	if !cl.part.Load() {
		return v // closed client: the cached view is the best answer left
	}
	members := make([]int, 0, len(v.Members))
	for _, m := range v.Members {
		if m != cl.id {
			members = append(members, m)
		}
	}
	return View{Epoch: v.Epoch + 1, Members: members}
}

// EpochContext implements Membership with the coordinator's semantics: a
// context that cancels when the epoch is superseded by a death. The
// client mirrors transitions through its watcher, so cancellation lags
// the coordinator by at most one watch round trip — the same window in
// which an in-process worker holding a stale view would still be running
// its doomed exchange.
func (cl *Client) EpochContext(epoch int) context.Context {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !cl.part.Load() && cl.view.Epoch == epoch {
		return cl.epochCtx
	}
	return canceledCtx
}

// AwaitEpoch implements Membership by polling the event endpoint (each
// poll beats, matching the coordinator's await-side heartbeating).
func (cl *Client) AwaitEpoch(ctx context.Context, id, after int) (View, error) {
	for {
		if cl.part.Load() {
			return View{}, ErrPartitioned
		}
		req := appendU32(nil, uint32(after))
		req = appendU32(req, 500)
		req = append(req, 1) // beat on the caller's behalf
		status, body, err := cl.call(ctx, &cl.main, ckAwaitEvent, req)
		if err != nil {
			return View{}, err
		}
		if err := statusErr(status, body); err != nil {
			return View{}, err
		}
		dec := &ctrlDec{b: body}
		changed := dec.u8() != 0
		_ = dec.u8() // fatal: the watcher handles context cancellation
		v := dec.view()
		if dec.err != nil {
			return View{}, dec.err
		}
		if changed {
			cl.mu.Lock()
			cl.view = v
			cl.mu.Unlock()
			return v, nil
		}
	}
}

// Gather implements Membership. The value must be an Item (the run's
// wire-serializable gather shape).
func (cl *Client) Gather(ctx context.Context, id, epoch int, key string, value interface{}) (map[int]interface{}, error) {
	if cl.part.Load() {
		return nil, ErrEvicted
	}
	it, ok := value.(Item)
	if !ok {
		return nil, fmt.Errorf("elastic: control-channel gather %q requires an elastic.Item value, got %T", key, value)
	}
	req := appendU32(nil, uint32(epoch))
	req = appendStr(req, key)
	req = appendItem(req, it)
	status, body, err := cl.call(ctx, &cl.main, ckGather, req)
	if err != nil {
		if errors.Is(err, ErrPartitioned) {
			return nil, ErrEvicted
		}
		return nil, err
	}
	if err := statusErr(status, body); err != nil {
		return nil, err
	}
	dec := &ctrlDec{b: body}
	n := dec.u32()
	if dec.err != nil || n > uint32(1<<20) {
		return nil, errors.New("elastic: malformed gather response")
	}
	vals := make(map[int]interface{}, n)
	for i := uint32(0); i < n; i++ {
		m := int(dec.u32())
		vals[m] = dec.item()
	}
	if dec.err != nil {
		return nil, dec.err
	}
	return vals, nil
}

// ReportDead implements Membership.
func (cl *Client) ReportDead(id int, cause error) {
	msg := "declared dead"
	if cause != nil {
		msg = cause.Error()
	}
	req := appendU32(nil, uint32(id))
	req = appendStr(req, msg)
	cl.call(context.Background(), &cl.main, ckReportDead, req)
}

// ReportAnomaly implements Membership.
func (cl *Client) ReportAnomaly(node int, err error) {
	if err == nil {
		return
	}
	req := appendU32(nil, uint32(node))
	req = appendStr(req, err.Error())
	cl.call(context.Background(), &cl.main, ckReportAnomaly, req)
}

// Depart implements Membership.
func (cl *Client) Depart(id int) {
	cl.call(context.Background(), &cl.main, ckDepart, nil)
}

// ProposeHalt implements Membership.
func (cl *Client) ProposeHalt(ownIter int) int {
	status, body, err := cl.call(context.Background(), &cl.main, ckProposeHalt, appendU64(nil, uint64(int64(ownIter))))
	if err != nil || status != stOK {
		return ownIter + 1 // unreachable coordinator: assume our proposal won
	}
	dec := &ctrlDec{b: body}
	return int(int64(dec.u64()))
}

// HaltIter implements Membership.
func (cl *Client) HaltIter() int {
	if cl.part.Load() {
		return -1
	}
	status, body, err := cl.call(context.Background(), &cl.main, ckHaltIter, nil)
	if err != nil || status != stOK {
		return -1
	}
	dec := &ctrlDec{b: body}
	return int(int64(dec.u64()))
}

// Join implements Membership: it asks the coordinator to splice this
// worker into the ring at the next epoch bump.
func (cl *Client) Join(id int) (View, error) {
	if cl.part.Load() {
		return View{}, ErrPartitioned
	}
	status, body, err := cl.call(context.Background(), &cl.main, ckJoin, nil)
	if err != nil {
		return View{}, err
	}
	if err := statusErr(status, body); err != nil {
		return View{}, err
	}
	dec := &ctrlDec{b: body}
	v := dec.view()
	if dec.err != nil {
		return View{}, dec.err
	}
	cl.mu.Lock()
	cl.view = v
	cl.mu.Unlock()
	return v, nil
}
