// Package comm provides the in-process cluster fabric the distributed
// training algorithms run on: N nodes exchanging float32 payloads over
// reliable, ordered point-to-point streams, with TCP/IP-style wire-byte
// accounting and the paper's ToS-based per-packet compression opt-in.
//
// Every outgoing payload passes through a WireProcessor — the software
// model of the NIC datapath. The default processor forwards payloads
// verbatim and charges packetized TCP/IP wire bytes. A compressing
// processor (either the reference codec here or the bit-exact engine model
// in internal/nic) inspects the ToS byte: packets tagged ToSCompress
// (0x28, as in the paper's Sec. VI-B) are lossily compressed on the way
// out and decompressed on the way in, exactly like the FPGA NIC.
package comm

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"inceptionn/internal/bitio"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/obs"
)

// ToSCompress is the reserved Type-of-Service value that marks a packet
// for in-NIC compression (the paper uses 0x28).
const ToSCompress uint8 = 0x28

// TCP/IP-over-Ethernet framing constants used for wire-byte accounting.
const (
	// MTU is the Ethernet maximum transmission unit.
	MTU = 1500
	// HeaderBytes is the per-packet overhead: Ethernet (14) + IPv4 (20) +
	// TCP (20) headers plus Ethernet FCS (4).
	HeaderBytes = 58
	// MSS is the TCP payload capacity of one packet.
	MSS = MTU - 40
)

// WireBytes returns the on-wire byte count for a TCP payload of n bytes,
// including per-packet header overhead. Zero-byte payloads still cost one
// packet (the paper's observation that compression does not reduce packet
// count below the header floor).
func WireBytes(n int64) int64 {
	packets := (n + MSS - 1) / MSS
	if packets == 0 {
		packets = 1
	}
	return n + packets*HeaderBytes
}

// WireProcessor models the NIC datapath applied to every sent payload.
type WireProcessor interface {
	// Process transforms an outgoing payload: it returns the payload the
	// receiver observes (lossy if compressed) and the payload bytes that
	// cross the wire (before per-packet header accounting).
	Process(payload []float32, tos uint8) (received []float32, payloadBytes int64)
}

// IdentityProcessor forwards payloads unmodified at full float32 size.
type IdentityProcessor struct{}

// Process implements WireProcessor.
func (IdentityProcessor) Process(payload []float32, tos uint8) ([]float32, int64) {
	return payload, 4 * int64(len(payload))
}

// CodecProcessor compresses ToSCompress-tagged payloads with the reference
// INCEPTIONN codec; other traffic passes through untouched. It is the pure
// software model of the NIC engines (internal/nic provides the bit-exact
// hardware-pipeline equivalent).
type CodecProcessor struct {
	Bound fpcodec.Bound
}

// Process implements WireProcessor.
func (p CodecProcessor) Process(payload []float32, tos uint8) ([]float32, int64) {
	if tos != ToSCompress {
		return payload, 4 * int64(len(payload))
	}
	w := bitio.NewWriter(len(payload)) // compressed streams are ~¼ size or less
	fpcodec.CompressStream(w, payload, p.Bound)
	out := make([]float32, len(payload))
	if err := fpcodec.DecompressStream(bitio.NewReader(w.Bytes(), w.Len()), out, p.Bound); err != nil {
		// The stream was produced by the matching encoder; failure here is
		// a programming error, not an I/O condition.
		panic(fmt.Sprintf("comm: internal codec roundtrip failed: %v", err))
	}
	return out, int64(len(w.Bytes()))
}

// LinkStats accumulates traffic counters for one directed link. Beyond the
// byte accounting, it carries the fault-tolerance observability surface:
// retransmissions, NACKs, degraded (raw-fallback) frames, receive timeouts,
// and receive-wait time, which together expose stragglers and flaky links.
type LinkStats struct {
	Messages     atomic.Int64
	PayloadBytes atomic.Int64 // post-compression payload bytes
	WireBytes    atomic.Int64 // payload + packet headers
	RawBytes     atomic.Int64 // pre-compression payload bytes (4·floats)

	// Recovery counters (populated by fault-tolerant transports).
	Retransmits atomic.Int64 // frames sent more than once
	Nacks       atomic.Int64 // NACKs issued by the receiver
	Degraded    atomic.Int64 // compressed frames refetched as raw
	Timeouts    atomic.Int64 // receive deadlines that expired

	// Straggler detection: cumulative and peak nanoseconds a receiver
	// spent blocked waiting on this link.
	RecvWaitNanos    atomic.Int64
	MaxRecvWaitNanos atomic.Int64
}

// ObserveRecvWait records d nanoseconds of receiver blocking on the link,
// updating both the cumulative total and the peak.
func (s *LinkStats) ObserveRecvWait(d int64) {
	s.RecvWaitNanos.Add(d)
	for {
		cur := s.MaxRecvWaitNanos.Load()
		if d <= cur || s.MaxRecvWaitNanos.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Reset zeroes every counter on the link.
func (s *LinkStats) Reset() {
	s.Messages.Store(0)
	s.PayloadBytes.Store(0)
	s.WireBytes.Store(0)
	s.RawBytes.Store(0)
	s.Retransmits.Store(0)
	s.Nacks.Store(0)
	s.Degraded.Store(0)
	s.Timeouts.Store(0)
	s.RecvWaitNanos.Store(0)
	s.MaxRecvWaitNanos.Store(0)
}

// message is one in-flight transfer.
type message struct {
	payload []float32
	tag     int
}

// fabricObs holds the fabric's observability handles, resolved once at
// SetRecorder time so the send path pays only an atomic pointer load.
type fabricObs struct {
	rec        *obs.Recorder
	raw        *obs.Counter // wire_bytes_raw: pre-compression payload bytes, all traffic
	compressed *obs.Counter // wire_bytes_compressed: post-codec payload bytes of ToS-compressed traffic
	ratio      *obs.Gauge   // compression_ratio: raw/compressed over ToS-compressed traffic

	// Running totals behind the ratio gauge (compressed-tagged traffic only).
	compRawB atomic.Int64
	compOutB atomic.Int64
}

// observe accounts one processed send.
func (o *fabricObs) observe(rawBytes, outBytes int64, compressed bool) {
	o.raw.Add(rawBytes)
	if !compressed {
		return
	}
	o.compressed.Add(outBytes)
	r := o.compRawB.Add(rawBytes)
	c := o.compOutB.Add(outBytes)
	if c > 0 {
		o.ratio.Set(float64(r) / float64(c))
	}
}

// Fabric connects n nodes with reliable ordered streams and a shared
// WireProcessor.
type Fabric struct {
	n     int
	proc  WireProcessor
	chans [][]chan message // chans[src][dst]
	stats [][]*LinkStats
	obs   atomic.Pointer[fabricObs]
}

// SetRecorder attaches an observability recorder to the fabric: every
// subsequent send reports wire_bytes_raw / wire_bytes_compressed
// counters and the live compression_ratio gauge, and ToS-compressed
// sends record a compress phase span (iteration -1: the codec runs
// inside the transport, below iteration attribution). A nil rec detaches.
func (f *Fabric) SetRecorder(rec *obs.Recorder) {
	if rec == nil {
		f.obs.Store(nil)
		return
	}
	f.obs.Store(&fabricObs{
		rec:        rec,
		raw:        rec.Counter("wire_bytes_raw"),
		compressed: rec.Counter("wire_bytes_compressed"),
		ratio:      rec.Gauge("compression_ratio"),
	})
}

// NewFabric creates a fabric of n nodes using proc (nil for identity).
// Streams are deeply buffered, modelling asynchronous sends (MPI_Isend):
// a send never blocks unless the peer is pathologically far behind.
func NewFabric(n int, proc WireProcessor) *Fabric {
	if n < 1 {
		panic("comm: fabric needs at least one node")
	}
	if proc == nil {
		proc = IdentityProcessor{}
	}
	f := &Fabric{n: n, proc: proc}
	f.chans = make([][]chan message, n)
	f.stats = make([][]*LinkStats, n)
	for i := 0; i < n; i++ {
		f.chans[i] = make([]chan message, n)
		f.stats[i] = make([]*LinkStats, n)
		for j := 0; j < n; j++ {
			f.chans[i][j] = make(chan message, 1024)
			f.stats[i][j] = &LinkStats{}
		}
	}
	return f
}

// N returns the number of nodes.
func (f *Fabric) N() int { return f.n }

// Endpoint returns node id's handle on the fabric.
func (f *Fabric) Endpoint(id int) *Endpoint {
	if id < 0 || id >= f.n {
		panic(fmt.Sprintf("comm: endpoint id %d out of range [0,%d)", id, f.n))
	}
	return &Endpoint{f: f, id: id}
}

// Stats returns the traffic counters of the directed link src→dst.
func (f *Fabric) Stats(src, dst int) *LinkStats { return f.stats[src][dst] }

// TotalWireBytes sums wire bytes over all links.
func (f *Fabric) TotalWireBytes() int64 {
	var total int64
	for i := range f.stats {
		for j := range f.stats[i] {
			total += f.stats[i][j].WireBytes.Load()
		}
	}
	return total
}

// TotalRawBytes sums pre-compression payload bytes over all links.
func (f *Fabric) TotalRawBytes() int64 {
	var total int64
	for i := range f.stats {
		for j := range f.stats[i] {
			total += f.stats[i][j].RawBytes.Load()
		}
	}
	return total
}

// ResetStats zeroes all traffic counters.
func (f *Fabric) ResetStats() {
	for i := range f.stats {
		for j := range f.stats[i] {
			f.stats[i][j].Reset()
		}
	}
}

// Peer is the transport-independent interface the collective algorithms
// run over: the in-process Endpoint below implements it, and so does the
// real-TCP endpoint in internal/tcpfabric.
type Peer interface {
	// ID returns this node's id in [0, N).
	ID() int
	// N returns the number of nodes.
	N() int
	// Send transmits payload to dst with the given ToS and tag.
	Send(dst int, payload []float32, tos uint8, tag int)
	// Recv blocks for the next payload from src, which must carry tag.
	Recv(src int, tag int) []float32
}

// CtxPeer is the fault-tolerant extension of Peer: sends and receives take
// a context whose deadline or cancellation bounds the operation, and
// anomalies surface as errors instead of panics. The collective algorithms
// in internal/ring and internal/mpi run on this interface; the panic-style
// Peer methods remain as thin wrappers for legacy callers.
type CtxPeer interface {
	Peer
	// SendCtx transmits payload to dst, honouring ctx cancellation. A
	// fault-tolerant transport may block here for retransmissions.
	SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error
	// RecvCtx blocks for the next payload from src until ctx is done. A
	// tag mismatch is a protocol error, returned rather than panicked.
	RecvCtx(ctx context.Context, src int, tag int) ([]float32, error)
}

// ctxAdapter lifts a plain Peer to CtxPeer with blocking semantics: the
// context is checked before each operation but cannot interrupt one in
// flight (the underlying transport has no cancellation hook).
type ctxAdapter struct {
	Peer
}

func (a ctxAdapter) SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	a.Send(dst, payload, tos, tag)
	return nil
}

func (a ctxAdapter) RecvCtx(ctx context.Context, src int, tag int) ([]float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.Recv(src, tag), nil
}

// AsCtxPeer returns p itself when it already implements CtxPeer, and
// otherwise wraps it in a best-effort adapter that checks the context
// between operations but cannot interrupt a blocked one.
func AsCtxPeer(p Peer) CtxPeer {
	if cp, ok := p.(CtxPeer); ok {
		return cp
	}
	return ctxAdapter{p}
}

// Endpoint is one node's interface to the fabric.
type Endpoint struct {
	f  *Fabric
	id int
}

// process runs the wire processor with observability attached (when a
// recorder is set on the fabric).
func (e *Endpoint) process(payload []float32, tos uint8) ([]float32, int64) {
	o := e.f.obs.Load()
	if o == nil {
		return e.f.proc.Process(payload, tos)
	}
	var sp obs.ActiveSpan
	if tos == ToSCompress {
		sp = o.rec.Span(e.id, -1, obs.PhaseCompress)
	}
	recv, payloadBytes := e.f.proc.Process(payload, tos)
	if tos == ToSCompress {
		sp.End()
	}
	o.observe(4*int64(len(payload)), payloadBytes, tos == ToSCompress)
	return recv, payloadBytes
}

var _ Peer = (*Endpoint)(nil)

// ID returns this endpoint's node id.
func (e *Endpoint) ID() int { return e.id }

// N returns the number of nodes in the fabric.
func (e *Endpoint) N() int { return e.f.n }

// Send transmits payload to node dst with the given ToS. The payload is
// copied through the wire processor, so the caller may reuse its buffer.
// tag must match the receiver's Recv tag (streams are ordered per link, so
// tags serve as a protocol assertion rather than reordering).
func (e *Endpoint) Send(dst int, payload []float32, tos uint8, tag int) {
	recv, payloadBytes := e.process(payload, tos)
	if len(payload) > 0 && len(recv) > 0 && &recv[0] == &payload[0] {
		// Identity path: copy so sender buffer reuse cannot race receiver.
		recv = append([]float32(nil), payload...)
	}
	s := e.f.stats[e.id][dst]
	s.Messages.Add(1)
	s.RawBytes.Add(4 * int64(len(payload)))
	s.PayloadBytes.Add(payloadBytes)
	s.WireBytes.Add(WireBytes(payloadBytes))
	e.f.chans[e.id][dst] <- message{payload: recv, tag: tag}
}

// Recv blocks until a payload arrives from node src and returns it. The
// message's tag must equal tag.
func (e *Endpoint) Recv(src int, tag int) []float32 {
	m := <-e.f.chans[src][e.id]
	if m.tag != tag {
		panic(fmt.Sprintf("comm: node %d expected tag %d from %d, got %d", e.id, tag, src, m.tag))
	}
	return m.payload
}

var _ CtxPeer = (*Endpoint)(nil)

// SendCtx implements CtxPeer: like Send, but gives up with ctx.Err() if
// the (deeply buffered) stream would block past the context deadline.
func (e *Endpoint) SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error {
	recv, payloadBytes := e.process(payload, tos)
	if len(payload) > 0 && len(recv) > 0 && &recv[0] == &payload[0] {
		recv = append([]float32(nil), payload...)
	}
	s := e.f.stats[e.id][dst]
	select {
	case e.f.chans[e.id][dst] <- message{payload: recv, tag: tag}:
	case <-ctx.Done():
		s.Timeouts.Add(1)
		return fmt.Errorf("comm: send %d->%d tag %d: %w", e.id, dst, tag, ctx.Err())
	}
	s.Messages.Add(1)
	s.RawBytes.Add(4 * int64(len(payload)))
	s.PayloadBytes.Add(payloadBytes)
	s.WireBytes.Add(WireBytes(payloadBytes))
	return nil
}

// RecvCtx implements CtxPeer: like Recv, but bounded by ctx and recording
// the blocked time into the link's straggler stats.
func (e *Endpoint) RecvCtx(ctx context.Context, src int, tag int) ([]float32, error) {
	payload, got, err := e.RecvMessageCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("comm: node %d expected tag %d from %d, got %d", e.id, tag, src, got)
	}
	return payload, nil
}

// RecvMessageCtx receives the next message from src regardless of its tag,
// returning the payload and the tag it carried. It is the demultiplexing
// primitive the fault-injection wrapper's link pumps are built on.
func (e *Endpoint) RecvMessageCtx(ctx context.Context, src int) ([]float32, int, error) {
	s := e.f.stats[src][e.id]
	start := time.Now()
	select {
	case m := <-e.f.chans[src][e.id]:
		s.ObserveRecvWait(time.Since(start).Nanoseconds())
		return m.payload, m.tag, nil
	case <-ctx.Done():
		s.Timeouts.Add(1)
		return nil, 0, fmt.Errorf("comm: recv %d<-%d: %w", e.id, src, ctx.Err())
	}
}
