package comm

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSendRecvCtxBasic(t *testing.T) {
	f := NewFabric(2, nil)
	ctx := context.Background()
	go func() {
		if err := f.Endpoint(0).SendCtx(ctx, 1, []float32{1, 2, 3}, 0, 7); err != nil {
			t.Error(err)
		}
	}()
	got, err := f.Endpoint(1).RecvCtx(ctx, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestRecvCtxDeadline(t *testing.T) {
	f := NewFabric(2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := f.Endpoint(1).RecvCtx(ctx, 0, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if f.Stats(0, 1).Timeouts.Load() == 0 {
		t.Error("timeout not counted in link stats")
	}
}

func TestSendCtxDeadlineOnFullChannel(t *testing.T) {
	f := NewFabric(2, nil)
	e := f.Endpoint(0)
	// Saturate the link's buffer, then the next send must time out.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var err error
	for i := 0; i < 10000; i++ {
		if err = e.SendCtx(ctx, 1, []float32{1}, 0, 0); err != nil {
			break
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded on saturated link, got %v", err)
	}
}

func TestRecvCtxTagMismatchIsError(t *testing.T) {
	f := NewFabric(2, nil)
	ctx := context.Background()
	go func() { _ = f.Endpoint(0).SendCtx(ctx, 1, []float32{1}, 0, 3) }()
	if _, err := f.Endpoint(1).RecvCtx(ctx, 0, 4); err == nil {
		t.Fatal("tag mismatch returned nil error")
	}
}

func TestRecvMessageCtxRecordsWait(t *testing.T) {
	f := NewFabric(2, nil)
	go func() {
		time.Sleep(30 * time.Millisecond)
		f.Endpoint(0).Send(1, []float32{9}, 0, 1)
	}()
	payload, tag, err := f.Endpoint(1).RecvMessageCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tag != 1 || payload[0] != 9 {
		t.Fatalf("got tag %d payload %v", tag, payload)
	}
	if f.Stats(0, 1).MaxRecvWaitNanos.Load() < (10 * time.Millisecond).Nanoseconds() {
		t.Error("recv wait below the injected 30ms delay")
	}
}

func TestAsCtxPeerIdentity(t *testing.T) {
	f := NewFabric(2, nil)
	e := f.Endpoint(0)
	if AsCtxPeer(e) != CtxPeer(e) {
		t.Fatal("endpoint re-wrapped instead of used directly")
	}
}

// minimalPeer implements only the blocking Peer interface, forcing
// AsCtxPeer to adapt it.
type minimalPeer struct{ payload []float32 }

func (m *minimalPeer) ID() int { return 0 }
func (m *minimalPeer) N() int  { return 2 }
func (m *minimalPeer) Send(dst int, payload []float32, tos uint8, tag int) {
	m.payload = append([]float32(nil), payload...)
}
func (m *minimalPeer) Recv(src int, tag int) []float32 { return m.payload }

func TestAsCtxPeerAdaptsBlockingPeer(t *testing.T) {
	p := &minimalPeer{}
	cp := AsCtxPeer(p)
	if err := cp.SendCtx(context.Background(), 1, []float32{5}, 0, 0); err != nil {
		t.Fatal(err)
	}
	got, err := cp.RecvCtx(context.Background(), 1, 0)
	if err != nil || got[0] != 5 {
		t.Fatalf("adapter roundtrip: %v %v", got, err)
	}
	// A pre-cancelled context must be honoured between (not during) ops.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cp.SendCtx(ctx, 1, []float32{5}, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestObserveRecvWaitMax(t *testing.T) {
	var s LinkStats
	s.ObserveRecvWait(10)
	s.ObserveRecvWait(50)
	s.ObserveRecvWait(20)
	if s.RecvWaitNanos.Load() != 80 {
		t.Errorf("total %d, want 80", s.RecvWaitNanos.Load())
	}
	if s.MaxRecvWaitNanos.Load() != 50 {
		t.Errorf("max %d, want 50", s.MaxRecvWaitNanos.Load())
	}
	s.Reset()
	if s.RecvWaitNanos.Load() != 0 || s.MaxRecvWaitNanos.Load() != 0 {
		t.Error("Reset left wait stats nonzero")
	}
}
