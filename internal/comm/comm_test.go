package comm

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"inceptionn/internal/fpcodec"
)

func TestWireBytes(t *testing.T) {
	cases := []struct {
		payload, want int64
	}{
		{0, HeaderBytes},                    // empty payload still costs a packet
		{1, 1 + HeaderBytes},                // one packet
		{MSS, MSS + HeaderBytes},            // exactly one full packet
		{MSS + 1, MSS + 1 + 2*HeaderBytes},  // spills into a second packet
		{10 * MSS, 10*MSS + 10*HeaderBytes}, // ten packets
	}
	for _, c := range cases {
		if got := WireBytes(c.payload); got != c.want {
			t.Errorf("WireBytes(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	f := NewFabric(2, nil)
	a, b := f.Endpoint(0), f.Endpoint(1)
	go a.Send(1, []float32{1, 2, 3}, 0, 7)
	got := b.Recv(0, 7)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("received %v", got)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	f := NewFabric(2, nil)
	a, b := f.Endpoint(0), f.Endpoint(1)
	buf := []float32{1, 2, 3}
	a.Send(1, buf, 0, 0)
	buf[0] = 99 // sender reuses its buffer
	got := b.Recv(0, 0)
	if got[0] != 1 {
		t.Fatalf("receiver observed sender mutation: %v", got)
	}
}

func TestTagMismatchPanics(t *testing.T) {
	f := NewFabric(2, nil)
	f.Endpoint(0).Send(1, []float32{1}, 0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tag mismatch")
		}
	}()
	f.Endpoint(1).Recv(0, 6)
}

func TestStatsAccounting(t *testing.T) {
	f := NewFabric(2, nil)
	payload := make([]float32, 1000) // 4000 bytes: 3 packets
	f.Endpoint(0).Send(1, payload, 0, 0)
	f.Endpoint(1).Recv(0, 0)
	s := f.Stats(0, 1)
	if s.Messages.Load() != 1 {
		t.Errorf("messages = %d", s.Messages.Load())
	}
	if s.RawBytes.Load() != 4000 || s.PayloadBytes.Load() != 4000 {
		t.Errorf("raw=%d payload=%d", s.RawBytes.Load(), s.PayloadBytes.Load())
	}
	wantWire := int64(4000 + 3*HeaderBytes)
	if s.WireBytes.Load() != wantWire {
		t.Errorf("wire = %d, want %d", s.WireBytes.Load(), wantWire)
	}
	if f.TotalWireBytes() != wantWire || f.TotalRawBytes() != 4000 {
		t.Errorf("totals: wire=%d raw=%d", f.TotalWireBytes(), f.TotalRawBytes())
	}
	f.ResetStats()
	if f.TotalWireBytes() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestCodecProcessorCompressesOnlyToS(t *testing.T) {
	proc := CodecProcessor{Bound: fpcodec.MustBound(10)}
	f := NewFabric(2, proc)
	a, b := f.Endpoint(0), f.Endpoint(1)
	rng := rand.New(rand.NewSource(1))
	payload := make([]float32, 8192)
	for i := range payload {
		payload[i] = float32(rng.NormFloat64() * 0.001)
	}

	// Untagged: bytes unchanged, values exact.
	a.Send(1, payload, 0, 1)
	got := b.Recv(0, 1)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("untagged payload modified")
		}
	}
	if f.Stats(0, 1).PayloadBytes.Load() != 4*8192 {
		t.Fatalf("untagged payload bytes = %d", f.Stats(0, 1).PayloadBytes.Load())
	}
	f.ResetStats()

	// Tagged: far fewer bytes, values within the error bound.
	a.Send(1, payload, ToSCompress, 2)
	got = b.Recv(0, 2)
	bound := fpcodec.MustBound(10).MaxError()
	for i := range payload {
		if math.Abs(float64(got[i])-float64(payload[i])) > bound {
			t.Fatalf("element %d: |%g-%g| > %g", i, got[i], payload[i], bound)
		}
	}
	compressed := f.Stats(0, 1).PayloadBytes.Load()
	if compressed >= 4*8192/4 {
		t.Errorf("compressed payload = %d bytes; expected > 4x reduction on tight gradients", compressed)
	}
	if f.Stats(0, 1).RawBytes.Load() != 4*8192 {
		t.Errorf("raw bytes = %d", f.Stats(0, 1).RawBytes.Load())
	}
}

func TestConcurrentPairwiseTraffic(t *testing.T) {
	const n = 8
	f := NewFabric(n, nil)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e := f.Endpoint(id)
			for round := 0; round < 50; round++ {
				for peer := 0; peer < n; peer++ {
					if peer == id {
						continue
					}
					e.Send(peer, []float32{float32(id), float32(round)}, 0, round)
				}
				for peer := 0; peer < n; peer++ {
					if peer == id {
						continue
					}
					m := e.Recv(peer, round)
					if int(m[0]) != peer || int(m[1]) != round {
						t.Errorf("node %d: bad message %v from %d round %d", id, m, peer, round)
						return
					}
				}
			}
		}(id)
	}
	wg.Wait()
}

func TestEndpointRangeChecks(t *testing.T) {
	f := NewFabric(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Endpoint(2)
}
