package bitio

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestLSBFirstPacking(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b1011, 4) // bits 0..3
	w.WriteBits(0b0110, 4) // bits 4..7
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b0110_1011 {
		t.Fatalf("packed byte = %08b, want 01101011", got[0])
	}
}

func TestCrossByteBoundary(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0x5, 3)
	w.WriteBits(0x1FF, 9) // spans bytes
	w.WriteBits(0xABCD, 16)
	r := NewReader(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(3); v != 0x5 {
		t.Fatalf("first field = %#x, want 0x5", v)
	}
	if v, _ := r.ReadBits(9); v != 0x1FF {
		t.Fatalf("second field = %#x, want 0x1FF", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("third field = %#x, want 0xABCD", v)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 0)
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("zero-width write changed state: len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
}

func TestFullWidth64(t *testing.T) {
	const v uint64 = 0xDEADBEEFCAFEBABE
	w := NewWriter(8)
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes(), w.Len())
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("roundtrip = %#x, want %#x", got, v)
	}
}

func TestMaskingOfHighBits(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0xFF, 3) // only low 3 bits should land
	r := NewReader(w.Bytes(), w.Len())
	v, _ := r.ReadBits(3)
	if v != 0x7 {
		t.Fatalf("masked value = %#x, want 0x7", v)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}

func TestShortRead(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(4); err != ErrShortRead {
		t.Fatalf("err = %v, want ErrShortRead", err)
	}
	// A failed read must not consume bits.
	v, err := r.ReadBits(3)
	if err != nil || v != 0b101 {
		t.Fatalf("after failed read: v=%#b err=%v", v, err)
	}
}

func TestSkip(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0xAA, 8)
	w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes(), w.Len())
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadBits(2)
	if v != 0x3 {
		t.Fatalf("after skip = %#x, want 0x3", v)
	}
	if err := r.Skip(1); err != ErrShortRead {
		t.Fatalf("over-skip err = %v, want ErrShortRead", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after reset = %d", w.Len())
	}
	w.WriteBits(0x1, 1)
	if w.Bytes()[0] != 1 {
		t.Fatalf("byte after reset = %x, want 1", w.Bytes()[0])
	}
}

func TestReaderAllBitsDefault(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x01}, -1)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
}

// TestQuickRoundtrip property: any sequence of variable-width fields written
// then read back yields the original values.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]int, count)
		values := make([]uint64, count)
		w := NewWriter(64)
		for i := range widths {
			widths[i] = rng.Intn(65)
			values[i] = rng.Uint64()
			if widths[i] < 64 {
				values[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := range widths {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != values[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<18 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(w.Bytes(), w.Len())
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 17 {
			r = NewReader(w.Bytes(), w.Len())
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}
