package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	if w.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(pattern))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestLSBFirstPacking(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0b1011, 4) // bits 0..3
	w.WriteBits(0b0110, 4) // bits 4..7
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b0110_1011 {
		t.Fatalf("packed byte = %08b, want 01101011", got[0])
	}
}

func TestCrossByteBoundary(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0x5, 3)
	w.WriteBits(0x1FF, 9) // spans bytes
	w.WriteBits(0xABCD, 16)
	r := NewReader(w.Bytes(), w.Len())
	if v, _ := r.ReadBits(3); v != 0x5 {
		t.Fatalf("first field = %#x, want 0x5", v)
	}
	if v, _ := r.ReadBits(9); v != 0x1FF {
		t.Fatalf("second field = %#x, want 0x1FF", v)
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("third field = %#x, want 0xABCD", v)
	}
}

func TestZeroWidthWrite(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 0)
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("zero-width write changed state: len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
}

func TestFullWidth64(t *testing.T) {
	const v uint64 = 0xDEADBEEFCAFEBABE
	w := NewWriter(8)
	w.WriteBits(v, 64)
	r := NewReader(w.Bytes(), w.Len())
	got, err := r.ReadBits(64)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("roundtrip = %#x, want %#x", got, v)
	}
}

func TestMaskingOfHighBits(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0xFF, 3) // only low 3 bits should land
	r := NewReader(w.Bytes(), w.Len())
	v, _ := r.ReadBits(3)
	if v != 0x7 {
		t.Fatalf("masked value = %#x, want 0x7", v)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
}

func TestShortRead(t *testing.T) {
	w := NewWriter(1)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(4); err != ErrShortRead {
		t.Fatalf("err = %v, want ErrShortRead", err)
	}
	// A failed read must not consume bits.
	v, err := r.ReadBits(3)
	if err != nil || v != 0b101 {
		t.Fatalf("after failed read: v=%#b err=%v", v, err)
	}
}

func TestSkip(t *testing.T) {
	w := NewWriter(2)
	w.WriteBits(0xAA, 8)
	w.WriteBits(0x3, 2)
	r := NewReader(w.Bytes(), w.Len())
	if err := r.Skip(8); err != nil {
		t.Fatal(err)
	}
	v, _ := r.ReadBits(2)
	if v != 0x3 {
		t.Fatalf("after skip = %#x, want 0x3", v)
	}
	if err := r.Skip(1); err != ErrShortRead {
		t.Fatalf("over-skip err = %v, want ErrShortRead", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after reset = %d", w.Len())
	}
	w.WriteBits(0x1, 1)
	if w.Bytes()[0] != 1 {
		t.Fatalf("byte after reset = %x, want 1", w.Bytes()[0])
	}
}

func TestReaderAllBitsDefault(t *testing.T) {
	r := NewReader([]byte{0xFF, 0x01}, -1)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
}

// TestQuickRoundtrip property: any sequence of variable-width fields written
// then read back yields the original values.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]int, count)
		values := make([]uint64, count)
		w := NewWriter(64)
		for i := range widths {
			widths[i] = rng.Intn(65)
			values[i] = rng.Uint64()
			if widths[i] < 64 {
				values[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := range widths {
			v, err := r.ReadBits(widths[i])
			if err != nil || v != values[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if w.Len() > 1<<18 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for i := 0; i < 4096; i++ {
		w.WriteBits(uint64(i), 17)
	}
	b.ReportAllocs()
	b.ResetTimer()
	r := NewReader(w.Bytes(), w.Len())
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 17 {
			r = NewReader(w.Bytes(), w.Len())
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAppendBitsStitchesUnaligned verifies the stitching primitive at
// every misalignment: writing a prefix of p bits and appending a second
// stream must equal writing both streams through one Writer.
func TestAppendBitsStitchesUnaligned(t *testing.T) {
	payload := []uint64{0xDEADBEEFCAFE, 0x1234, 0x7, 0xFFFFFFFFFFFFFFFF}
	widths := []int{47, 16, 3, 64}
	for p := 0; p <= 17; p++ {
		// Reference: single writer.
		ref := NewWriter(64)
		ref.WriteBits(0x5A5A5, p)
		for i, v := range payload {
			ref.WriteBits(v, widths[i])
		}
		// Stitched: second stream built independently, then appended.
		part := NewWriter(64)
		for i, v := range payload {
			part.WriteBits(v, widths[i])
		}
		got := NewWriter(64)
		got.WriteBits(0x5A5A5, p)
		got.Append(part)
		if got.Len() != ref.Len() {
			t.Fatalf("p=%d: len %d vs %d", p, got.Len(), ref.Len())
		}
		if !bytes.Equal(got.Bytes(), ref.Bytes()) {
			t.Fatalf("p=%d: stitched bytes differ:\n%x\n%x", p, got.Bytes(), ref.Bytes())
		}
	}
}

// TestWriterResetReuseRoundtrip pins the Reset contract the parallel
// stitcher relies on: a reused shard writer must leave no residue from
// the previous stream (stale buffer bits OR'd into fresh ones).
func TestWriterResetReuseRoundtrip(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 61) // dirty the buffer with set bits
	w.Reset()
	w.WriteBits(0b1010, 4)
	w.WriteBits(0, 9)
	w.WriteBits(0x155, 9)
	fresh := NewWriter(8)
	fresh.WriteBits(0b1010, 4)
	fresh.WriteBits(0, 9)
	fresh.WriteBits(0x155, 9)
	if w.Len() != fresh.Len() || !bytes.Equal(w.Bytes(), fresh.Bytes()) {
		t.Fatalf("reused writer differs from fresh: %x (%d bits) vs %x (%d bits)",
			w.Bytes(), w.Len(), fresh.Bytes(), fresh.Len())
	}
	// And the reused buffer round-trips through a reader.
	r := NewReader(w.Bytes(), w.Len())
	for _, want := range []struct {
		v     uint64
		width int
	}{{0b1010, 4}, {0, 9}, {0x155, 9}} {
		got, err := r.ReadBits(want.width)
		if err != nil || got != want.v {
			t.Fatalf("ReadBits(%d) = %x, %v; want %x", want.width, got, err, want.v)
		}
	}
}

// TestReaderAt checks the concurrent-decode cursor primitive.
func TestReaderAt(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xABC, 12)
	w.WriteBits(0xDEF, 12)
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadBits(12); err != nil {
		t.Fatal(err)
	}
	sub := r.At(12)
	v, err := sub.ReadBits(12)
	if err != nil || v != 0xDEF {
		t.Fatalf("At(12).ReadBits(12) = %x, %v", v, err)
	}
	if r.Pos() != 12 {
		t.Fatalf("At must not move the parent cursor: pos %d", r.Pos())
	}
	if sub.Remaining() != 0 {
		t.Fatalf("sub remaining %d", sub.Remaining())
	}
}
