// Package bitio provides bit-granular writers and readers used by the
// compression codecs in this repository.
//
// Bits are packed LSB-first within each byte: the first bit written becomes
// bit 0 of byte 0. This matches the hardware alignment units modelled in
// internal/nic, where variable-size compressed vectors are concatenated into
// 256-bit bursts with the earliest vector occupying the least significant
// positions.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortRead is returned by Reader methods when fewer bits remain in the
// underlying buffer than were requested.
var ErrShortRead = errors.New("bitio: not enough bits")

// Writer accumulates bits LSB-first into a growing byte slice.
//
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int // total number of bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits appends the width least significant bits of v, LSB first.
// Width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for width > 0 {
		bitPos := w.nbit & 7
		if bitPos == 0 {
			w.buf = append(w.buf, 0)
		}
		take := 8 - bitPos
		if take > width {
			take = width
		}
		w.buf[len(w.buf)-1] |= byte(v) << uint(bitPos)
		v >>= uint(take)
		w.nbit += take
		width -= take
	}
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the packed bytes. Unused high bits of the final byte are
// zero. The returned slice aliases the writer's internal buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset discards all written bits, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// AppendBits appends the first nbits bits of buf (packed LSB-first, as
// produced by Writer.Bytes) to w, at w's current — possibly unaligned —
// bit position. It is the stitching primitive behind the parallel codec:
// shard streams produced by independent Writers concatenate into exactly
// the stream a single sequential Writer would have produced.
func (w *Writer) AppendBits(buf []byte, nbits int) {
	if nbits < 0 || nbits > 8*len(buf) {
		panic(fmt.Sprintf("bitio: AppendBits %d bits from buffer of %d bits", nbits, 8*len(buf)))
	}
	i := 0
	for nbits >= 64 {
		w.WriteBits(binary.LittleEndian.Uint64(buf[i:]), 64)
		i += 8
		nbits -= 64
	}
	for nbits > 0 {
		take := nbits
		if take > 8 {
			take = 8
		}
		w.WriteBits(uint64(buf[i]), take)
		i++
		nbits -= take
	}
}

// Append appends every bit written to o onto w.
func (w *Writer) Append(o *Writer) {
	w.AppendBits(o.buf, o.nbit)
}

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // bit position of the next read
	nbit int // total readable bits
}

// NewReader returns a Reader over buf exposing nbits bits. If nbits is
// negative, all 8*len(buf) bits are exposed.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 {
		nbits = 8 * len(buf)
	}
	if nbits > 8*len(buf) {
		panic(fmt.Sprintf("bitio: nbits %d exceeds buffer of %d bits", nbits, 8*len(buf)))
	}
	return &Reader{buf: buf, nbit: nbits}
}

// ReadBits consumes width bits and returns them in the least significant
// positions of the result. Width must be in [0, 64].
func (r *Reader) ReadBits(width int) (uint64, error) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitio: invalid width %d", width))
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortRead
	}
	var v uint64
	got := 0
	for got < width {
		bytePos := r.pos >> 3
		bitPos := r.pos & 7
		take := 8 - bitPos
		if take > width-got {
			take = width - got
		}
		chunk := uint64(r.buf[bytePos]>>uint(bitPos)) & ((1 << uint(take)) - 1)
		v |= chunk << uint(got)
		got += take
		r.pos += take
	}
	return v, nil
}

// ReadBit consumes a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// Pos returns the bit position of the next read.
func (r *Reader) Pos() int { return r.pos }

// Skip advances past n bits.
func (r *Reader) Skip(n int) error {
	if n < 0 || r.pos+n > r.nbit {
		return ErrShortRead
	}
	r.pos += n
	return nil
}

// At returns a new Reader over the same buffer and bit limit, positioned
// at absolute bit position pos. Readers returned by At share the
// (immutable) buffer but carry private cursors, enabling concurrent
// decoding of disjoint stream regions.
func (r *Reader) At(pos int) *Reader {
	if pos < 0 || pos > r.nbit {
		panic(fmt.Sprintf("bitio: At(%d) outside [0,%d]", pos, r.nbit))
	}
	return &Reader{buf: r.buf, pos: pos, nbit: r.nbit}
}
