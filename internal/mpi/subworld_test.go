package mpi

import (
	"sync"
	"testing"

	"inceptionn/internal/comm"
)

// TestSubWorldCollectives runs an all-reduce over a strict subset of the
// fabric — the reconfigured-ring case: after losing node 1, the survivors
// {0, 2, 3} rebuild their communicator and their collectives must neither
// touch nor need the dead node.
func TestSubWorldCollectives(t *testing.T) {
	f := comm.NewFabric(4, nil)
	members := []int{0, 2, 3}
	var mu sync.Mutex
	results := make(map[int][]float32)
	var wg sync.WaitGroup
	for _, id := range members {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := SubWorld(f.Endpoint(id), members)
			if err != nil {
				t.Error(err)
				return
			}
			if c.Size() != 3 {
				t.Errorf("node %d: Size = %d, want 3", id, c.Size())
			}
			vec := []float32{float32(id + 1), float32(10 * (id + 1))}
			c.AllReduce(vec)
			mu.Lock()
			results[id] = vec
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	want := []float32{1 + 3 + 4, 10 + 30 + 40}
	for _, id := range members {
		got := results[id]
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("node %d: AllReduce = %v, want %v", id, got, want)
		}
	}
}

func TestSubWorldValidation(t *testing.T) {
	f := comm.NewFabric(4, nil)
	p := f.Endpoint(0)
	if _, err := SubWorld(p, []int{0, 4}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := SubWorld(p, []int{0, 2, 2}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := SubWorld(p, []int{1, 2}); err == nil {
		t.Error("non-member self accepted")
	}
	c, err := SubWorld(p, []int{3, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 1 {
		t.Errorf("Rank = %d, want 1 (position in member list)", c.Rank())
	}
}
