package mpi

import (
	"context"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/fault"
)

// switchChaosResult is one node's outcome from a chaos-injected switch
// all-reduce: its error (nil on success) and, for workers that finished,
// the reduced vector.
type switchChaosResult struct {
	err error
	vec []float32
}

// runSwitchChaos runs one switch all-reduce over p workers plus the
// switch at rank p, on a fabric wrapped with the given fault config. It
// enforces the timeout-not-deadlock contract itself: every role must
// return — success or error — well inside the watchdog.
func runSwitchChaos(t *testing.T, p int, vecLen int, opt SwitchOptions, cfg fault.Config, stepTimeout time.Duration) []switchChaosResult {
	t.Helper()
	sw := p
	comms, closeAll := chaosComms(p+1, cfg)
	defer closeAll()
	for _, c := range comms {
		c.SetStepTimeout(stepTimeout)
	}

	results := make([]switchChaosResult, p+1)
	var wg sync.WaitGroup
	for rank := 0; rank <= p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := comms[rank]
			if rank == sw {
				results[rank].err = c.SwitchServeCtx(context.Background(), vecLen, opt)
				return
			}
			vec := make([]float32, vecLen)
			for i := range vec {
				vec[i] = float32(rank + 1)
			}
			results[rank].err = c.AllReduceSwitchCtx(context.Background(), vec, sw, opt)
			results[rank].vec = vec
		}(rank)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("switch all-reduce deadlocked under chaos")
	}
	return results
}

// TestSwitchPathChaos drives unrecoverable faults into the worker↔switch
// links at every protocol stage — first and mid-stream chunks, up and
// down direction, plus a switch crash mid-multicast — and asserts the
// collective fails closed: no role hangs past its step deadline, and
// every surfaced error grades to a class the health monitor can act on
// (stall or hard), never to an unclassifiable one.
func TestSwitchPathChaos(t *testing.T) {
	const (
		p      = 3
		sw     = p
		vecLen = 64
		chunk  = 16 // 4 chunks: link seq 0..3 per direction
	)
	opt := SwitchOptions{ChunkFloats: chunk}

	cases := []struct {
		name string
		cfg  fault.Config
	}{
		{
			// Worker 0's very first upload chunk never arrives: the switch
			// stalls before any combine happens.
			name: "up link dead at first chunk",
			cfg: fault.Config{Seed: 11, Links: map[fault.Link]fault.LinkFaults{
				{Src: 0, Dst: sw}: {DropRate: 1},
			}},
		},
		{
			// The stream dies mid-flight: chunks 0–1 combine cleanly, chunk 2's
			// upload is blackholed.
			name: "up link partitioned mid-stream",
			cfg: fault.Config{Seed: 12, Links: map[fault.Link]fault.LinkFaults{
				{Src: 1, Dst: sw}: fault.Partition(2),
			}},
		},
		{
			// The multicast leg dies before the first combined chunk reaches
			// worker 1: the switch's send retries out, the worker stalls.
			name: "down link dead at first chunk",
			cfg: fault.Config{Seed: 13, Links: map[fault.Link]fault.LinkFaults{
				{Src: sw, Dst: 1}: {DropRate: 1},
			}},
		},
		{
			// Downstream dies mid-stream, on the last chunk of one port only.
			name: "down link partitioned at last chunk",
			cfg: fault.Config{Seed: 14, Links: map[fault.Link]fault.LinkFaults{
				{Src: sw, Dst: 2}: fault.Partition(3),
			}},
		},
		{
			// The switch itself dies partway through a multicast (a chunk's
			// fan-out is p frames; crash after 4 lands mid-chunk-1).
			name: "switch crash mid-multicast",
			cfg:  fault.Config{Seed: 15, CrashAfter: map[int]uint64{sw: 4}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			results := runSwitchChaos(t, p, vecLen, opt, tc.cfg, 500*time.Millisecond)
			elapsed := time.Since(start)

			failed := 0
			for rank, res := range results {
				if res.err == nil {
					continue
				}
				failed++
				class, cause := GradeSwitchFault(res.err)
				if class != SwitchFaultStall && !class.Hard() {
					t.Errorf("rank %d error graded %v (%s), want stall or hard evidence: %v",
						rank, class, cause, res.err)
				}
			}
			if failed == 0 {
				t.Fatal("every role completed despite an unrecoverable fault")
			}
			// Timeout-not-deadlock, quantified: the whole exchange must
			// unwind within a few step deadlines plus retry budget, not sit
			// on the 60s watchdog.
			if elapsed > 10*time.Second {
				t.Errorf("chaos unwind took %s; step deadline is 500ms", elapsed)
			}
		})
	}
}

// TestSwitchPathRecoverableChaos floods every link with faults the ARQ
// layer can absorb — drops, bit corruption, duplicates, delays — and
// requires the collective to converge to the exact sums anyway: lossy
// links must be indistinguishable from reliable ones below the
// retransmission budget.
func TestSwitchPathRecoverableChaos(t *testing.T) {
	const p, vecLen = 3, 64
	cfg := fault.Config{
		Seed: 21,
		Default: fault.LinkFaults{
			DropRate: 0.1, CorruptRate: 0.2, DupRate: 0.1,
			DelayRate: 0.05, Delay: time.Millisecond,
		},
	}
	results := runSwitchChaos(t, p, vecLen, SwitchOptions{ChunkFloats: 16}, cfg, 10*time.Second)
	want := float32(p * (p + 1) / 2)
	for rank, res := range results {
		if res.err != nil {
			t.Fatalf("rank %d under recoverable chaos: %v", rank, res.err)
		}
		for i, v := range res.vec {
			if v != want {
				t.Fatalf("rank %d elem %d = %g, want %g", rank, i, v, want)
			}
		}
	}
}
