package mpi

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// runSwitchWorld executes one switch all-reduce over p workers plus the
// switch at the last rank, returning each worker's reduced vector.
func runSwitchWorld(t *testing.T, p, vecLen int, opt SwitchOptions, fill func(rank, i int) float32) map[int][]float32 {
	t.Helper()
	sw := p
	var mu sync.Mutex
	results := make(map[int][]float32)
	runRanks(t, p+1, nil, func(c *Comm) {
		if c.Rank() == sw {
			if err := c.SwitchServeCtx(context.Background(), vecLen, opt); err != nil {
				t.Errorf("switch: %v", err)
			}
			return
		}
		vec := make([]float32, vecLen)
		for i := range vec {
			vec[i] = fill(c.Rank(), i)
		}
		if err := c.AllReduceSwitchCtx(context.Background(), vec, sw, opt); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		mu.Lock()
		results[c.Rank()] = vec
		mu.Unlock()
	})
	return results
}

// TestAllReduceSwitchBitExactWithRing is the tentpole acceptance check:
// the switch collective must land on bit-identical float32 sums with the
// ring collective, across worker counts, non-divisible vector lengths,
// and chunk sizes that slice blocks mid-stream. Values are adversarial
// for associativity (wide magnitude spread), so any deviation from the
// ring's per-block accumulation order shows up as a bit difference.
func TestAllReduceSwitchBitExactWithRing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{1, 2, 3, 4, 5, 8} {
		for _, vecLen := range []int{1, 7, 64, 65, 257} {
			// Shared per-rank inputs for both collectives.
			input := make([][]float32, p)
			for r := range input {
				input[r] = make([]float32, vecLen)
				for i := range input[r] {
					input[r][i] = float32((rng.Float64()*2 - 1) * 1e6 * rng.Float64())
				}
			}
			fill := func(rank, i int) float32 { return input[rank][i] }

			var mu sync.Mutex
			want := make(map[int][]float32)
			runRanks(t, p, nil, func(c *Comm) {
				vec := make([]float32, vecLen)
				for i := range vec {
					vec[i] = fill(c.Rank(), i)
				}
				c.AllReduce(vec)
				mu.Lock()
				want[c.Rank()] = vec
				mu.Unlock()
			})

			for _, chunk := range []int{0, 1, 3, vecLen / 2, vecLen} {
				if (SwitchOptions{ChunkFloats: chunk}).Validate(vecLen) != nil {
					continue // over-chunked configs are rejected, covered below
				}
				got := runSwitchWorld(t, p, vecLen, SwitchOptions{ChunkFloats: chunk}, fill)
				if len(got) != p {
					t.Fatalf("p=%d len=%d chunk=%d: %d workers reported", p, vecLen, chunk, len(got))
				}
				for r := 0; r < p; r++ {
					for i := range got[r] {
						if got[r][i] != want[r][i] {
							t.Fatalf("p=%d len=%d chunk=%d rank=%d elem %d: switch %x ring %x",
								p, vecLen, chunk, r, i, got[r][i], want[r][i])
						}
					}
				}
			}
		}
	}
}

// TestAllReduceSwitchWindowGuard pins the tag-window validation: chunk
// counts past switchTagMod would silently wrap the mod-64 up/down tag
// bands, so both sides must reject the configuration up front with a
// sized-window error naming the smallest legal chunk — and the largest
// chunking that fits must still work.
func TestAllReduceSwitchWindowGuard(t *testing.T) {
	const p, vecLen = 3, 300
	// 150 chunks of 2 floats: both roles refuse before touching the wire.
	opt := SwitchOptions{ChunkFloats: 2}
	if err := opt.Validate(vecLen); !errors.Is(err, ErrSwitchWindow) {
		t.Fatalf("Validate(300) with 2-float chunks = %v, want ErrSwitchWindow", err)
	} else if !strings.Contains(err.Error(), "ChunkFloats >= 5") {
		t.Errorf("window error should size the minimum chunk (300/64 -> 5): %v", err)
	}
	runRanks(t, p+1, nil, func(c *Comm) {
		if c.Rank() == p {
			if err := c.SwitchServeCtx(context.Background(), vecLen, opt); !errors.Is(err, ErrSwitchWindow) {
				t.Errorf("switch accepted a wrapped tag window: %v", err)
			}
			return
		}
		vec := make([]float32, vecLen)
		if err := c.AllReduceSwitchCtx(context.Background(), vec, p, opt); !errors.Is(err, ErrSwitchWindow) {
			t.Errorf("rank %d accepted a wrapped tag window: %v", c.Rank(), err)
		}
	})

	// The minimum legal chunk (exactly 60 chunks of 5) must stream clean.
	got := runSwitchWorld(t, p, vecLen, SwitchOptions{ChunkFloats: 5}, func(rank, i int) float32 {
		return float32(rank + 1)
	})
	for r := 0; r < p; r++ {
		for i, v := range got[r] {
			if v != float32(p*(p+1)/2) {
				t.Fatalf("rank %d elem %d = %g, want %g", r, i, v, float32(p*(p+1)/2))
			}
		}
	}
}

func TestAllReduceSwitchBadRoles(t *testing.T) {
	f := newTestComm(t)
	if err := f.AllReduceSwitchCtx(context.Background(), []float32{1}, 99, SwitchOptions{}); err == nil {
		t.Fatal("out-of-range switch rank accepted")
	}
	if err := f.AllReduceSwitchCtx(context.Background(), []float32{1}, f.Rank(), SwitchOptions{}); err == nil {
		t.Fatal("switch rank calling the worker side accepted")
	}
}

// newTestComm returns a single rank of a 2-node fabric, for error-path
// tests that never touch the wire.
func newTestComm(t *testing.T) *Comm {
	t.Helper()
	var c *Comm
	runRanks(t, 2, nil, func(cc *Comm) {
		if cc.Rank() == 0 {
			c = cc
		}
	})
	return c
}

// TestScatterBoundsTiling exhaustively asserts the shard partition the
// ring, ReduceScatter, and switch combine all share: for every vector
// length and part count the shards must exactly tile [0, n) — contiguous,
// non-overlapping, no element dropped — with sizes differing by at most
// one and larger shards first.
func TestScatterBoundsTiling(t *testing.T) {
	for n := 1; n <= 65; n++ {
		for parts := 1; parts <= 8; parts++ {
			next := 0
			minSize, maxSize := n, 0
			for b := 0; b < parts; b++ {
				lo, hi := scatterBounds(n, parts, b)
				if lo != next {
					t.Fatalf("n=%d parts=%d block %d: lo=%d, want %d (gap or overlap)", n, parts, b, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d parts=%d block %d: hi=%d < lo=%d", n, parts, b, hi, lo)
				}
				size := hi - lo
				if size < minSize {
					minSize = size
				}
				if size > maxSize {
					maxSize = size
				}
				if b > 0 {
					prevLo, prevHi := scatterBounds(n, parts, b-1)
					if prevHi-prevLo < size {
						t.Fatalf("n=%d parts=%d block %d larger than block %d", n, parts, b, b-1)
					}
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d parts=%d: shards cover [0,%d), want [0,%d)", n, parts, next, n)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("n=%d parts=%d: shard sizes range [%d,%d]", n, parts, minSize, maxSize)
			}
		}
	}
}

// TestReduceScatterUneven runs the full collective on lengths that do not
// divide by the rank count and checks every rank's shard carries the exact
// elementwise sum for its own block — no boundary element dropped or
// double-counted.
func TestReduceScatterUneven(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for _, vecLen := range []int{1, 5, 13, 64, 65} {
			var mu sync.Mutex
			shards := make(map[int][]float32)
			runRanks(t, n, nil, func(c *Comm) {
				vec := make([]float32, vecLen)
				for i := range vec {
					vec[i] = float32((c.Rank() + 1) * (i + 1))
				}
				out, err := c.ReduceScatterCtx(context.Background(), vec)
				if err != nil {
					t.Errorf("rank %d: %v", c.Rank(), err)
					return
				}
				mu.Lock()
				shards[c.Rank()] = out
				mu.Unlock()
			})
			sumRanks := float32(n * (n + 1) / 2)
			for r := 0; r < n; r++ {
				lo, hi := scatterBounds(vecLen, n, r)
				if len(shards[r]) != hi-lo {
					t.Fatalf("n=%d len=%d rank=%d: shard len %d, want %d", n, vecLen, r, len(shards[r]), hi-lo)
				}
				for i, v := range shards[r] {
					want := sumRanks * float32(lo+i+1)
					if v != want {
						t.Fatalf("n=%d len=%d rank=%d elem %d = %g, want %g", n, vecLen, r, i, v, want)
					}
				}
			}
		}
	}
}
