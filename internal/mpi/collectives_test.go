package mpi

import (
	"math"
	"sync"
	"testing"
)

func TestAllGather(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6} {
		var mu sync.Mutex
		results := make([][]float32, n)
		runRanks(t, n, nil, func(c *Comm) {
			vec := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
			out := c.AllGather(vec)
			mu.Lock()
			results[c.Rank()] = out
			mu.Unlock()
		})
		for rank, out := range results {
			if len(out) != 2*n {
				t.Fatalf("n=%d rank=%d: AllGather len %d", n, rank, len(out))
			}
			for r := 0; r < n; r++ {
				if out[2*r] != float32(r) || out[2*r+1] != float32(10*r) {
					t.Fatalf("n=%d rank=%d: block %d = %v", n, rank, r, out[2*r:2*r+2])
				}
			}
		}
	}
}

func TestReduceScatter(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		length := 4*n + 3 // uneven blocks
		var mu sync.Mutex
		results := make(map[int][]float32)
		runRanks(t, n, nil, func(c *Comm) {
			vec := make([]float32, length)
			for i := range vec {
				vec[i] = float32(i * (c.Rank() + 1))
			}
			out := c.ReduceScatter(vec)
			mu.Lock()
			results[c.Rank()] = out
			mu.Unlock()
		})
		// Expected sum at index i: i * (1+2+...+n).
		tri := float32(n * (n + 1) / 2)
		for rank := 0; rank < n; rank++ {
			lo, hi := scatterBounds(length, n, rank)
			out := results[rank]
			if len(out) != hi-lo {
				t.Fatalf("n=%d rank=%d: block size %d, want %d", n, rank, len(out), hi-lo)
			}
			for j, v := range out {
				want := float32(lo+j) * tri
				if math.Abs(float64(v-want)) > 1e-3 {
					t.Fatalf("n=%d rank=%d elem %d: got %g want %g", n, rank, j, v, want)
				}
			}
		}
	}
}

// TestReduceScatterThenAllGatherEqualsAllReduce: the two halves compose
// into the full exchange (the structure of Algorithm 1).
func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	n := 4
	length := 8 // divisible: equal blocks, so AllGather can reassemble
	var mu sync.Mutex
	results := make([][]float32, n)
	runRanks(t, n, nil, func(c *Comm) {
		vec := make([]float32, length)
		for i := range vec {
			vec[i] = float32((c.Rank() + 1) * (i + 1))
		}
		block := c.ReduceScatter(vec)
		full := c.AllGather(block)
		mu.Lock()
		results[c.Rank()] = full
		mu.Unlock()
	})
	for rank, full := range results {
		for i, v := range full {
			want := float32(10 * (i + 1)) // (1+2+3+4)*(i+1)
			if v != want {
				t.Fatalf("rank %d elem %d: got %g want %g", rank, i, v, want)
			}
		}
	}
}

func TestScatter(t *testing.T) {
	n := 4
	root := 1
	var mu sync.Mutex
	results := make([][]float32, n)
	runRanks(t, n, nil, func(c *Comm) {
		var chunks [][]float32
		if c.Rank() == root {
			chunks = make([][]float32, n)
			for r := range chunks {
				chunks[r] = make([]float32, r+1) // ragged
				for i := range chunks[r] {
					chunks[r][i] = float32(100*r + i)
				}
			}
		}
		out := c.Scatter(chunks, root)
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
	})
	for r, out := range results {
		if len(out) != r+1 {
			t.Fatalf("rank %d chunk len %d, want %d", r, len(out), r+1)
		}
		for i, v := range out {
			if v != float32(100*r+i) {
				t.Fatalf("rank %d elem %d = %g", r, i, v)
			}
		}
	}
}

func TestScatterPanicsOnBadChunkCount(t *testing.T) {
	f := newTestFabric(2)
	c := World(f, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Scatter(make([][]float32, 3), 0)
}
