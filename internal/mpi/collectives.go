package mpi

import (
	"context"
	"fmt"

	"inceptionn/internal/comm"
)

// Additional collectives rounding out the OpenMPI-like API surface of the
// paper's Sec. VI-B. AllGather and ReduceScatter are the two halves of the
// ring AllReduce (Fig. 6's P2 and P1 phases respectively), exposed
// separately; Scatter is Bcast's counterpart. Each has a fault-tolerant
// Ctx form; the bare method panics on failure, as the legacy API did.

// Tag bases for the additional collectives.
const (
	tagAllGather     = 7100
	tagReduceScatter = 7200
	tagScatter       = 7300
)

// AllGather concatenates every rank's vec (all must have equal length)
// into one vector ordered by rank, using the ring pipeline (each link
// carries (p−1)·len bytes, balanced like the paper's exchange).
func (c *Comm) AllGather(vec []float32) []float32 {
	out, err := c.AllGatherCtx(context.Background(), vec)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// AllGatherCtx is the fault-tolerant AllGather.
func (c *Comm) AllGatherCtx(ctx context.Context, vec []float32) ([]float32, error) {
	n, rank := c.Size(), c.Rank()
	out := make([]float32, n*len(vec))
	copy(out[rank*len(vec):], vec)
	if n == 1 {
		return out, nil
	}
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendBlk := ((rank-s)%n + n) % n
		recvBlk := ((rank-s-1)%n + n) % n
		if err := c.sendStep(ctx, right, out[sendBlk*len(vec):(sendBlk+1)*len(vec)], c.tos, tagAllGather+s); err != nil {
			return nil, err
		}
		rb, err := c.recvStep(ctx, left, tagAllGather+s)
		if err != nil {
			return nil, err
		}
		copy(out[recvBlk*len(vec):], rb)
	}
	return out, nil
}

// ReduceScatter sums vec elementwise across ranks and returns this rank's
// 1/p block of the result (blocks are the same contiguous partition the
// ring AllReduce uses; rank i receives block i). All vectors must have
// equal length.
func (c *Comm) ReduceScatter(vec []float32) []float32 {
	out, err := c.ReduceScatterCtx(context.Background(), vec)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// ReduceScatterCtx is the fault-tolerant ReduceScatter.
func (c *Comm) ReduceScatterCtx(ctx context.Context, vec []float32) ([]float32, error) {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return append([]float32(nil), vec...), nil
	}
	work := append([]float32(nil), vec...)
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 1; s <= n-1; s++ {
		sendBlk := ((rank-s+1)%n + n) % n
		recvBlk := ((rank-s)%n + n) % n
		lo, hi := scatterBounds(len(work), n, sendBlk)
		if err := c.sendStep(ctx, right, work[lo:hi], c.tos, tagReduceScatter+s); err != nil {
			return nil, err
		}
		rb, err := c.recvStep(ctx, left, tagReduceScatter+s)
		if err != nil {
			return nil, err
		}
		lo, hi = scatterBounds(len(work), n, recvBlk)
		local := work[lo:hi]
		for i, v := range rb {
			local[i] += v
		}
	}
	// After n−1 steps this rank owns fully reduced block (rank+1) mod n,
	// which is exactly the block its right neighbour should return; one
	// final shift gives every rank its own block.
	ownBlk := (rank + 1) % n
	lo, hi := scatterBounds(len(work), n, ownBlk)
	if err := c.sendStep(ctx, right, work[lo:hi], c.tos, tagReduceScatter); err != nil {
		return nil, err
	}
	rb, err := c.recvStep(ctx, left, tagReduceScatter)
	if err != nil {
		return nil, err
	}
	return append([]float32(nil), rb...), nil
}

// scatterBounds mirrors the ring package's block partition.
func scatterBounds(n, parts, b int) (lo, hi int) {
	per := n / parts
	rem := n % parts
	lo = b*per + minInt(b, rem)
	size := per
	if b < rem {
		size++
	}
	return lo, lo + size
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scatter distributes root's per-rank chunks: root passes chunks indexed
// by rank (each chunk may differ in length); every rank returns its own
// chunk. Non-root ranks pass nil.
func (c *Comm) Scatter(chunks [][]float32, root int) []float32 {
	out, err := c.ScatterCtx(context.Background(), chunks, root)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// ScatterCtx is the fault-tolerant Scatter.
func (c *Comm) ScatterCtx(ctx context.Context, chunks [][]float32, root int) ([]float32, error) {
	n, rank := c.Size(), c.Rank()
	if rank == root {
		if len(chunks) != n {
			return nil, fmt.Errorf("mpi: Scatter got %d chunks for %d ranks", len(chunks), n)
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			if err := c.sendStep(ctx, r, chunks[r], 0, tagScatter); err != nil {
				return nil, err
			}
		}
		return append([]float32(nil), chunks[root]...), nil
	}
	return c.recvStep(ctx, root, tagScatter)
}

// Endpoint exposes the underlying transport peer, letting callers mix
// collective and point-to-point communication on one communicator.
func (c *Comm) Endpoint() comm.Peer { return c.e }
