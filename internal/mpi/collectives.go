package mpi

import (
	"fmt"

	"inceptionn/internal/comm"
)

// Additional collectives rounding out the OpenMPI-like API surface of the
// paper's Sec. VI-B. AllGather and ReduceScatter are the two halves of the
// ring AllReduce (Fig. 6's P2 and P1 phases respectively), exposed
// separately; Scatter is Bcast's counterpart.

// Tag bases for the additional collectives.
const (
	tagAllGather     = 7100
	tagReduceScatter = 7200
	tagScatter       = 7300
)

// AllGather concatenates every rank's vec (all must have equal length)
// into one vector ordered by rank, using the ring pipeline (each link
// carries (p−1)·len bytes, balanced like the paper's exchange).
func (c *Comm) AllGather(vec []float32) []float32 {
	n, rank := c.Size(), c.Rank()
	out := make([]float32, n*len(vec))
	copy(out[rank*len(vec):], vec)
	if n == 1 {
		return out
	}
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 0; s < n-1; s++ {
		sendBlk := ((rank-s)%n + n) % n
		recvBlk := ((rank-s-1)%n + n) % n
		c.e.Send(right, out[sendBlk*len(vec):(sendBlk+1)*len(vec)], c.tos, tagAllGather+s)
		rb := c.e.Recv(left, tagAllGather+s)
		copy(out[recvBlk*len(vec):], rb)
	}
	return out
}

// ReduceScatter sums vec elementwise across ranks and returns this rank's
// 1/p block of the result (blocks are the same contiguous partition the
// ring AllReduce uses; rank i receives block i). All vectors must have
// equal length.
func (c *Comm) ReduceScatter(vec []float32) []float32 {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return append([]float32(nil), vec...)
	}
	work := append([]float32(nil), vec...)
	right := (rank + 1) % n
	left := (rank - 1 + n) % n
	for s := 1; s <= n-1; s++ {
		sendBlk := ((rank-s+1)%n + n) % n
		recvBlk := ((rank-s)%n + n) % n
		lo, hi := scatterBounds(len(work), n, sendBlk)
		c.e.Send(right, work[lo:hi], c.tos, tagReduceScatter+s)
		rb := c.e.Recv(left, tagReduceScatter+s)
		lo, hi = scatterBounds(len(work), n, recvBlk)
		local := work[lo:hi]
		for i, v := range rb {
			local[i] += v
		}
	}
	// After n−1 steps this rank owns fully reduced block (rank+1) mod n,
	// which is exactly the block its right neighbour should return; one
	// final shift gives every rank its own block.
	ownBlk := (rank + 1) % n
	lo, hi := scatterBounds(len(work), n, ownBlk)
	c.e.Send(right, work[lo:hi], c.tos, tagReduceScatter)
	rb := c.e.Recv(left, tagReduceScatter)
	return append([]float32(nil), rb...)
}

// scatterBounds mirrors the ring package's block partition.
func scatterBounds(n, parts, b int) (lo, hi int) {
	per := n / parts
	rem := n % parts
	lo = b*per + minInt(b, rem)
	size := per
	if b < rem {
		size++
	}
	return lo, lo + size
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Scatter distributes root's per-rank chunks: root passes chunks indexed
// by rank (each chunk may differ in length); every rank returns its own
// chunk. Non-root ranks pass nil.
func (c *Comm) Scatter(chunks [][]float32, root int) []float32 {
	n, rank := c.Size(), c.Rank()
	if rank == root {
		if len(chunks) != n {
			panic(fmt.Sprintf("mpi: Scatter got %d chunks for %d ranks", len(chunks), n))
		}
		for r := 0; r < n; r++ {
			if r == root {
				continue
			}
			c.e.Send(r, chunks[r], 0, tagScatter)
		}
		return append([]float32(nil), chunks[root]...)
	}
	return c.e.Recv(root, tagScatter)
}

// Endpoint exposes the underlying transport peer, letting callers mix
// collective and point-to-point communication on one communicator.
func (c *Comm) Endpoint() comm.Peer { return c.e }
