package mpi

import (
	"context"
	"errors"
	"fmt"
)

// In-network switch all-reduce (NetReduce-style, arXiv:2009.09736): one
// communicator rank plays the programmable switch's reduction unit, every
// other rank streams its gradient up in chunks sized to the on-switch
// aggregation buffer, the switch combines each chunk as it lands, and
// multicasts the combined chunk back down all ports. Workers drive
// AllReduceSwitchCtx; the switch rank runs SwitchServeCtx concurrently.
//
// The combine is bit-exact with the ring collective: for every ring block
// b (same contiguous partition the ring uses, over the worker count), the
// switch accumulates worker contributions in the rotated order b, b+1, …,
// (b+p−1) mod p — exactly the left-associated order in which ring rank b's
// block is summed as it travels the ring — so an IEEE float32 sum lands on
// identical bits and a switch-trained replica matches a ring-trained one.

// Tag bases for the switch collective; chunk sequence asserted mod
// switchTagMod (streams are ordered per link, tags are protocol checks).
const (
	tagSwitchUp   = 7400
	tagSwitchDown = 7500
	switchTagMod  = 64
)

// Sentinels for the two failure classes the switch protocol itself can
// detect; the health monitor (GradeSwitchFault) keys off them.
var (
	// ErrSwitchWindow reports a chunking whose chunk count exceeds the
	// mod-64 tag window: the k-th and (k+64)-th chunks would carry the
	// same tag, so a frame delayed across the window boundary could alias
	// a later chunk undetected. Validate rejects the configuration up
	// front instead.
	ErrSwitchWindow = errors.New("mpi: switch chunk count exceeds the tag window")
	// ErrSwitchProtocol reports a combine that violated the stream
	// protocol — a chunk of the wrong size, evidence the switch (or a
	// port) missed or mangled a combine step.
	ErrSwitchProtocol = errors.New("mpi: switch protocol violation")
)

// SwitchOptions tunes the switch collective.
type SwitchOptions struct {
	// ChunkFloats bounds how many float32s stream through the switch per
	// chunk, modelling the on-switch aggregation memory (netsim's
	// SwitchMemBytes / 4). 0 sends the whole vector as one chunk.
	ChunkFloats int
}

func (o SwitchOptions) chunk(n int) int {
	if o.ChunkFloats <= 0 || o.ChunkFloats > n {
		return n
	}
	return o.ChunkFloats
}

// Validate checks the chunking against the tag window for an n-float
// vector: more than switchTagMod chunks would silently wrap the
// tagSwitchUp/tagSwitchDown mod-64 bands, risking cross-chunk frame
// aliasing. The returned error (wrapping ErrSwitchWindow) names the
// smallest ChunkFloats that fits.
func (o SwitchOptions) Validate(n int) error {
	if n <= 0 {
		return nil
	}
	chunk := o.chunk(n)
	chunks := (n + chunk - 1) / chunk
	if chunks > switchTagMod {
		minChunk := (n + switchTagMod - 1) / switchTagMod
		return fmt.Errorf("%w: %d floats in %d-float chunks is %d chunks, window holds %d (use ChunkFloats >= %d)",
			ErrSwitchWindow, n, chunk, chunks, switchTagMod, minChunk)
	}
	return nil
}

// AllReduceSwitch is AllReduceSwitchCtx with the legacy panic-on-failure
// contract.
func (c *Comm) AllReduceSwitch(vec []float32, sw int, opt SwitchOptions) {
	if err := c.AllReduceSwitchCtx(context.Background(), vec, sw, opt); err != nil {
		panic(err.Error())
	}
}

// AllReduceSwitchCtx sums vec elementwise across all worker ranks, in
// place, through the switch at rank sw (which must concurrently run
// SwitchServeCtx with the same options and vector length). Each chunk is
// one deadline-bounded upload followed by one deadline-bounded receive of
// the combined result, so stragglers and partitions surface exactly as in
// the ring collective.
func (c *Comm) AllReduceSwitchCtx(ctx context.Context, vec []float32, sw int, opt SwitchOptions) error {
	if sw < 0 || sw >= c.Size() {
		return fmt.Errorf("mpi: switch rank %d outside [0,%d)", sw, c.Size())
	}
	if c.rank == sw {
		return fmt.Errorf("mpi: rank %d is the switch; run SwitchServeCtx instead", c.rank)
	}
	if err := opt.Validate(len(vec)); err != nil {
		return err
	}
	chunk := opt.chunk(len(vec))
	for k, lo := 0, 0; lo < len(vec); k, lo = k+1, lo+chunk {
		hi := lo + chunk
		if hi > len(vec) {
			hi = len(vec)
		}
		if err := c.sendStep(ctx, sw, vec[lo:hi], c.tos, tagSwitchUp+k%switchTagMod); err != nil {
			return err
		}
		rb, err := c.recvStep(ctx, sw, tagSwitchDown+k%switchTagMod)
		if err != nil {
			return err
		}
		if len(rb) != hi-lo {
			return fmt.Errorf("%w: switch returned %d floats for a %d-float chunk", ErrSwitchProtocol, len(rb), hi-lo)
		}
		copy(vec[lo:hi], rb)
	}
	return nil
}

// SwitchServeCtx runs the switch's reduction unit for one all-reduce over
// a gradLen-float vector: every rank except this one is a worker port, in
// rank order. Per chunk it receives all ports' contributions, combines
// them per ring block in the rotated port order (bit-exact with the ring
// result), applies the communicator finalize to the combined chunk, and
// multicasts it back down every port.
func (c *Comm) SwitchServeCtx(ctx context.Context, gradLen int, opt SwitchOptions) error {
	p := c.Size() - 1
	if p < 1 {
		return nil
	}
	workers := make([]int, 0, p)
	for r := 0; r < c.Size(); r++ {
		if r != c.rank {
			workers = append(workers, r)
		}
	}
	if err := opt.Validate(gradLen); err != nil {
		return err
	}
	chunk := opt.chunk(gradLen)
	ports := make([][]float32, p)
	out := make([]float32, chunk)
	for k, lo := 0, 0; lo < gradLen; k, lo = k+1, lo+chunk {
		hi := lo + chunk
		if hi > gradLen {
			hi = gradLen
		}
		for wi, r := range workers {
			rb, err := c.recvStep(ctx, r, tagSwitchUp+k%switchTagMod)
			if err != nil {
				return err
			}
			if len(rb) != hi-lo {
				return fmt.Errorf("%w: port %d sent %d floats for a %d-float chunk", ErrSwitchProtocol, r, len(rb), hi-lo)
			}
			ports[wi] = rb
		}
		combined := out[:hi-lo]
		// Combine per ring block: scatterBounds partitions the full
		// gradient into p blocks exactly as the ring does; within block b
		// the accumulation starts at port b and walks the ports in rotated
		// order, matching the ring's left-associated summation bit for bit.
		for b := 0; b < p; b++ {
			blo, bhi := scatterBounds(gradLen, p, b)
			if blo < lo {
				blo = lo
			}
			if bhi > hi {
				bhi = hi
			}
			if blo >= bhi {
				continue
			}
			seg := combined[blo-lo : bhi-lo]
			for j := 0; j < p; j++ {
				src := ports[(b+j)%p][blo-lo : bhi-lo]
				if j == 0 {
					copy(seg, src)
					continue
				}
				for i, v := range src {
					seg[i] += v
				}
			}
		}
		if c.finalize != nil {
			c.finalize(combined)
		}
		for _, r := range workers {
			if err := c.sendStep(ctx, r, combined, c.tos, tagSwitchDown+k%switchTagMod); err != nil {
				return err
			}
		}
	}
	return nil
}
