package mpi

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/fault"
)

// chaosComms builds one communicator per rank over a chaos-wrapped
// in-process fabric.
func chaosComms(n int, cfg fault.Config) ([]*Comm, func()) {
	f := comm.NewFabric(n, nil)
	inj := fault.NewInjector(n, cfg)
	comms := make([]*Comm, n)
	peers := make([]*fault.Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = fault.Wrap(f.Endpoint(i), inj, fault.Options{RTO: 5 * time.Millisecond})
		comms[i] = WorldPeer(peers[i])
	}
	return comms, func() {
		for _, p := range peers {
			p.Close()
		}
	}
}

func lossyConfig(seed int64) fault.Config {
	return fault.Config{
		Seed: seed,
		Default: fault.LinkFaults{
			DropRate: 0.05, CorruptRate: 0.05, DupRate: 0.02,
			DelayRate: 0.01, Delay: time.Millisecond,
		},
	}
}

// TestCollectivesUnderChaos runs every Ctx collective over a fabric with
// 1–10% fault rates and checks exact results: the chaos wrapper's ARQ
// must make the lossy links indistinguishable from reliable ones.
func TestCollectivesUnderChaos(t *testing.T) {
	const n = 4
	comms, closeAll := chaosComms(n, lossyConfig(31))
	defer closeAll()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	fail := make(chan string, n*8)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := comms[rank]
			check := func(cond bool, what string) {
				if !cond {
					fail <- what
				}
			}

			// AllReduce: sum of rank-dependent vectors.
			vec := []float32{float32(rank), float32(rank) * 2, 1}
			if err := c.AllReduceCtx(ctx, vec); err != nil {
				fail <- "allreduce: " + err.Error()
				return
			}
			check(vec[0] == 6 && vec[1] == 12 && vec[2] == 4, "allreduce values")

			// Bcast from rank 1.
			b := []float32{0, 0}
			if rank == 1 {
				b = []float32{3.5, -7}
			}
			if err := c.BcastCtx(ctx, b, 1); err != nil {
				fail <- "bcast: " + err.Error()
				return
			}
			check(b[0] == 3.5 && b[1] == -7, "bcast values")

			// Reduce to rank 2.
			r := []float32{1, float32(rank)}
			if err := c.ReduceCtx(ctx, r, 2); err != nil {
				fail <- "reduce: " + err.Error()
				return
			}
			if rank == 2 {
				check(r[0] == 4 && r[1] == 6, "reduce values")
			}

			// Gather at rank 0.
			g, err := c.GatherCtx(ctx, []float32{float32(rank * 10)}, 0)
			if err != nil {
				fail <- "gather: " + err.Error()
				return
			}
			if rank == 0 {
				for i := 0; i < n; i++ {
					check(g[i][0] == float32(i*10), "gather values")
				}
			}

			// AllGather.
			ag, err := c.AllGatherCtx(ctx, []float32{float32(rank)})
			if err != nil {
				fail <- "allgather: " + err.Error()
				return
			}
			for i := 0; i < n; i++ {
				check(ag[i] == float32(i), "allgather values")
			}

			// ReduceScatter.
			full := make([]float32, n)
			for i := range full {
				full[i] = float32(rank + i)
			}
			rs, err := c.ReduceScatterCtx(ctx, full)
			if err != nil {
				fail <- "reducescatter: " + err.Error()
				return
			}
			check(len(rs) == 1 && rs[0] == float32(6+4*rank), "reducescatter values")

			// Barrier.
			if err := c.BarrierCtx(ctx); err != nil {
				fail <- "barrier: " + err.Error()
			}
		}(rank)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}

// TestBarrierPartitionErrors: a barrier across a partition must error on
// a deadline, never deadlock.
func TestBarrierPartitionErrors(t *testing.T) {
	const n = 4
	comms, closeAll := chaosComms(n, fault.Config{
		Seed:  1,
		Links: map[fault.Link]fault.LinkFaults{{Src: 1, Dst: 0}: fault.Partition(0)},
	})
	defer closeAll()
	for _, c := range comms {
		c.SetStepTimeout(300 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	errs := make([]error, n)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = comms[rank].BarrierCtx(ctx)
		}(rank)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("partitioned barrier hung")
	}
	// Rank 1's token to rank 0 is blackholed: the reduce leg must fail on
	// at least those two ranks (sender retries out, receiver times out).
	anyTimeout := false
	for _, err := range errs {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, fault.ErrMaxRetries) {
			anyTimeout = true
		}
	}
	if !anyTimeout {
		t.Errorf("no rank surfaced a timeout: %v", errs)
	}
}

// TestStepTimeoutStraggler: the per-step deadline catches a straggling
// link even when the caller's context has no deadline of its own.
func TestStepTimeoutStraggler(t *testing.T) {
	comms, closeAll := chaosComms(2, fault.Config{
		Seed:  1,
		Links: map[fault.Link]fault.LinkFaults{{Src: 1, Dst: 0}: fault.Partition(0)},
	})
	defer closeAll()
	comms[0].SetStepTimeout(200 * time.Millisecond)
	comms[1].SetStepTimeout(200 * time.Millisecond)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			v := []float32{1}
			errs[rank] = comms[rank].AllReduceCtx(context.Background(), v)
		}(rank)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Fatal("partitioned AllReduce succeeded with no deadline firing")
	}
}
