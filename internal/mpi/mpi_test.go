package mpi

import (
	"math"
	"sync"
	"testing"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
)

// runRanks executes body on n concurrent ranks over a fresh fabric.
func runRanks(t *testing.T, n int, proc comm.WireProcessor, body func(c *Comm)) *comm.Fabric {
	t.Helper()
	f := comm.NewFabric(n, proc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body(World(f, i))
		}(i)
	}
	wg.Wait()
	return f
}

func TestBcastAllRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		for root := 0; root < n; root++ {
			var mu sync.Mutex
			results := make(map[int][]float32)
			runRanks(t, n, nil, func(c *Comm) {
				vec := make([]float32, 16)
				if c.Rank() == root {
					for i := range vec {
						vec[i] = float32(i + 100*root)
					}
				}
				c.Bcast(vec, root)
				mu.Lock()
				results[c.Rank()] = vec
				mu.Unlock()
			})
			for rank, vec := range results {
				for i := range vec {
					if vec[i] != float32(i+100*root) {
						t.Fatalf("n=%d root=%d rank=%d elem %d = %g", n, root, rank, i, vec[i])
					}
				}
			}
		}
	}
}

func TestReduceSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for root := 0; root < n; root++ {
			var mu sync.Mutex
			var rootVec []float32
			runRanks(t, n, nil, func(c *Comm) {
				vec := []float32{float32(c.Rank() + 1), 2}
				c.Reduce(vec, root)
				if c.Rank() == root {
					mu.Lock()
					rootVec = vec
					mu.Unlock()
				}
			})
			wantFirst := float32(n * (n + 1) / 2)
			if rootVec[0] != wantFirst || rootVec[1] != float32(2*n) {
				t.Fatalf("n=%d root=%d: reduced %v, want [%g %g]", n, root, rootVec, wantFirst, float32(2*n))
			}
		}
	}
}

func TestAllReduceMatchesReduceBcast(t *testing.T) {
	n := 4
	var mu sync.Mutex
	results := make([][]float32, n)
	runRanks(t, n, nil, func(c *Comm) {
		vec := []float32{float32(c.Rank()), 1, float32(c.Rank() * c.Rank())}
		c.AllReduce(vec)
		mu.Lock()
		results[c.Rank()] = vec
		mu.Unlock()
	})
	want := []float32{0 + 1 + 2 + 3, 4, 0 + 1 + 4 + 9}
	for rank, vec := range results {
		for i := range want {
			if vec[i] != want[i] {
				t.Fatalf("rank %d elem %d = %g, want %g", rank, i, vec[i], want[i])
			}
		}
	}
}

func TestGather(t *testing.T) {
	n := 5
	var mu sync.Mutex
	var gathered [][]float32
	runRanks(t, n, nil, func(c *Comm) {
		vec := make([]float32, c.Rank()+1) // ragged
		for i := range vec {
			vec[i] = float32(c.Rank())
		}
		res := c.Gather(vec, 2)
		if c.Rank() == 2 {
			mu.Lock()
			gathered = res
			mu.Unlock()
		} else if res != nil {
			t.Errorf("non-root rank %d got non-nil gather", c.Rank())
		}
	})
	for r := 0; r < n; r++ {
		if len(gathered[r]) != r+1 {
			t.Fatalf("rank %d contributed %d elems, want %d", r, len(gathered[r]), r+1)
		}
		for _, v := range gathered[r] {
			if v != float32(r) {
				t.Fatalf("rank %d data corrupted: %v", r, gathered[r])
			}
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		done := make(chan struct{})
		go func() {
			runRanks(t, n, nil, func(c *Comm) {
				for i := 0; i < 10; i++ {
					c.Barrier()
				}
			})
			close(done)
		}()
		<-done
	}
}

func TestCollectiveCommCompTagsGradientTraffic(t *testing.T) {
	n := 4
	bound := fpcodec.MustBound(10)
	// Tight values compress heavily when the ToS flag is on.
	f := runRanks(t, n, comm.CodecProcessor{Bound: bound}, func(c *Comm) {
		c.CollectiveCommComp(true)
		if !c.Compressing() {
			t.Error("Compressing() = false after enable")
		}
		vec := make([]float32, 8192)
		for i := range vec {
			vec[i] = 1e-5
		}
		c.AllReduce(vec)
	})
	if f.TotalWireBytes() >= f.TotalRawBytes()/4 {
		t.Errorf("compressed collectives moved %d wire bytes for %d raw",
			f.TotalWireBytes(), f.TotalRawBytes())
	}

	// With the flag off, wire bytes exceed raw (headers).
	f2 := runRanks(t, n, comm.CodecProcessor{Bound: bound}, func(c *Comm) {
		c.CollectiveCommComp(false)
		vec := make([]float32, 8192)
		c.AllReduce(vec)
	})
	if f2.TotalWireBytes() <= f2.TotalRawBytes() {
		t.Errorf("uncompressed wire bytes %d <= raw %d", f2.TotalWireBytes(), f2.TotalRawBytes())
	}
}

func TestBcastNeverCompressed(t *testing.T) {
	// Weights must never be lossy even when compression is enabled.
	n := 3
	bound := fpcodec.MustBound(6)
	var mu sync.Mutex
	results := make([][]float32, n)
	runRanks(t, n, comm.CodecProcessor{Bound: bound}, func(c *Comm) {
		c.CollectiveCommComp(true)
		vec := make([]float32, 100)
		if c.Rank() == 0 {
			for i := range vec {
				vec[i] = 1e-5 // would be crushed to 0 by the codec
			}
		}
		c.Bcast(vec, 0)
		mu.Lock()
		results[c.Rank()] = vec
		mu.Unlock()
	})
	for rank, vec := range results {
		for i, v := range vec {
			if math.Abs(float64(v)-1e-5) > 1e-12 {
				t.Fatalf("rank %d elem %d = %g: broadcast was lossy", rank, i, v)
			}
		}
	}
}

func newTestFabric(n int) *comm.Fabric { return comm.NewFabric(n, nil) }
