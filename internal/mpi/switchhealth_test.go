package mpi

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"inceptionn/internal/fault"
)

func TestGradeSwitchFault(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want SwitchFaultClass
		hard bool
	}{
		{"nil", nil, SwitchFaultNone, false},
		{"cancelled", context.Canceled, SwitchFaultUnrelated, false},
		{"wrapped cancelled", fmt.Errorf("mpi: rank 1 recv: %w", context.Canceled), SwitchFaultUnrelated, false},
		{"deadline", fmt.Errorf("recv 1<-4: %w", context.DeadlineExceeded), SwitchFaultStall, false},
		{"crash", fmt.Errorf("node 4 send: %w", fault.ErrCrashed), SwitchFaultLink, true},
		{"retries", fmt.Errorf("send 0->4 seq 3 after 8 attempts: %w", fault.ErrMaxRetries), SwitchFaultLink, true},
		{"closed", fault.ErrClosed, SwitchFaultLink, true},
		{"window", fmt.Errorf("%w: too many chunks", ErrSwitchWindow), SwitchFaultProtocol, true},
		{"protocol", fmt.Errorf("%w: short chunk", ErrSwitchProtocol), SwitchFaultProtocol, true},
		{"desync", errors.New("fault: node 1 expected tag 7401 from 4, got 7403"), SwitchFaultProtocol, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			class, cause := GradeSwitchFault(tc.err)
			if class != tc.want {
				t.Fatalf("GradeSwitchFault(%v) = %v, want %v", tc.err, class, tc.want)
			}
			if class.Hard() != tc.hard {
				t.Fatalf("class %v Hard() = %v, want %v", class, class.Hard(), tc.hard)
			}
			if tc.err != nil && cause == "" {
				t.Errorf("no cause string for %v", tc.err)
			}
		})
	}
}

// TestSwitchMonitorStrikes pins the confirming policy: hard evidence
// confirms immediately, stalls accumulate to the strike limit, and a
// clean exchange resets the count.
func TestSwitchMonitorStrikes(t *testing.T) {
	stall := fmt.Errorf("recv: %w", context.DeadlineExceeded)

	m := &SwitchMonitor{SoftStrikes: 2}
	if ok, _, _ := m.Observe(stall); ok {
		t.Fatal("one stall out of two confirmed")
	}
	if ok, _, _ := m.Observe(nil); ok {
		t.Fatal("success confirmed a failure")
	}
	if ok, _, _ := m.Observe(stall); ok {
		t.Fatal("stall after a success confirmed: the success should reset strikes")
	}
	if ok, class, cause := m.Observe(stall); !ok || class != SwitchFaultStall || cause == "" {
		t.Fatalf("second consecutive stall: confirmed=%v class=%v cause=%q", ok, class, cause)
	}

	// Defaults: one stall confirms; hard classes always confirm at once.
	var d SwitchMonitor
	if ok, _, _ := d.Observe(stall); !ok {
		t.Fatal("default monitor should confirm on the first stall")
	}
	var h SwitchMonitor
	if ok, class, _ := h.Observe(fault.ErrMaxRetries); !ok || class != SwitchFaultLink {
		t.Fatalf("hard evidence: confirmed=%v class=%v", ok, class)
	}
	// Cancellation never confirms and never strikes.
	var u SwitchMonitor
	u.SoftStrikes = 1
	if ok, class, _ := u.Observe(context.Canceled); ok || class != SwitchFaultUnrelated {
		t.Fatalf("cancellation: confirmed=%v class=%v", ok, class)
	}
}
