// Package mpi provides MPI-flavoured collective communication over the
// comm fabric, mirroring the software stack of the paper's Sec. VI-B: a
// default collective API plus CollectiveCommComp — the paper's
// MPI_collective_communication_comp — which propagates a per-communicator
// flag down to the transport and tags every packet of subsequent
// collectives with ToS 0x28, opting them into in-NIC lossy compression
// (the setsockopt path in Fig. 11).
//
// Every collective has two forms: the legacy panic-on-failure method
// (AllReduce, Bcast, …) and a fault-tolerant Ctx variant (AllReduceCtx,
// BcastCtx, …) that honours context deadlines, applies the communicator's
// per-step timeout, and returns transport errors — the surface a
// production training loop drives so a partition or straggler becomes a
// recoverable error rather than a crashed process.
package mpi

import (
	"context"
	"fmt"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

// Comm is a communicator: one rank's handle on the collective group.
// A communicator may span the whole fabric (World) or an arbitrary member
// subset (SubWorld); ranks are always dense [0, Size()) and are mapped to
// fabric ids internally, which is how an elastic run rebuilds its
// neighbor maps after evicting a failed node.
type Comm struct {
	e           comm.CtxPeer
	members     []int // fabric ids by rank; nil = identity (full fabric)
	rank        int   // this process's rank within members
	tos         uint8
	finalize    func([]float32)
	stepTimeout time.Duration
}

// World returns rank id's communicator over fabric f.
func World(f *comm.Fabric, id int) *Comm {
	return &Comm{e: f.Endpoint(id), rank: id}
}

// WorldPeer returns a communicator over any transport peer — an
// in-process endpoint, a TCP fabric node, or a chaos-wrapped peer from
// internal/fault. Peers that do not implement comm.CtxPeer are adapted
// with blocking semantics.
func WorldPeer(p comm.Peer) *Comm {
	return &Comm{e: comm.AsCtxPeer(p), rank: p.ID()}
}

// SubWorld returns a communicator restricted to the given fabric ids, in
// rank order; p's own id must be a member. Collectives on a SubWorld only
// touch member links — the other fabric nodes are invisible — so a
// training run that loses a node can continue on the survivors by
// rebuilding its communicator over the (n−1)-member view.
func SubWorld(p comm.Peer, members []int) (*Comm, error) {
	n := p.N()
	seen := make(map[int]bool, len(members))
	rank := -1
	for i, m := range members {
		if m < 0 || m >= n {
			return nil, fmt.Errorf("mpi: member %d out of fabric range [0,%d)", m, n)
		}
		if seen[m] {
			return nil, fmt.Errorf("mpi: duplicate member %d", m)
		}
		seen[m] = true
		if m == p.ID() {
			rank = i
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("mpi: node %d is not in member list %v", p.ID(), members)
	}
	return &Comm{e: comm.AsCtxPeer(p), members: append([]int(nil), members...), rank: rank}, nil
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int {
	if c.members == nil {
		return c.e.N()
	}
	return len(c.members)
}

// id maps a communicator rank to its fabric id.
func (c *Comm) id(rank int) int {
	if c.members == nil {
		return rank
	}
	return c.members[rank]
}

// Members returns the fabric ids by rank (nil for a full-fabric World).
func (c *Comm) Members() []int { return c.members }

// CollectiveCommComp enables or disables lossy compression for subsequent
// collectives on this communicator by setting the packet ToS field, exactly
// as the paper's specialized API does per TCP socket.
func (c *Comm) CollectiveCommComp(enabled bool) {
	if enabled {
		c.tos = comm.ToSCompress
	} else {
		c.tos = 0
	}
}

// Compressing reports whether collectives are currently ToS-tagged.
func (c *Comm) Compressing() bool { return c.tos == comm.ToSCompress }

// SetFinalize installs the function applied to this rank's fully
// aggregated ring block during AllReduce (see ring.AllReduce); required
// for bit-identical replicas when compression is enabled.
func (c *Comm) SetFinalize(f func([]float32)) { c.finalize = f }

// SetStepTimeout bounds every individual send/recv step of the Ctx
// collectives: a link that stalls longer returns a timeout error naming
// the peer, which is how stragglers and partitions surface. 0 disables.
func (c *Comm) SetStepTimeout(d time.Duration) { c.stepTimeout = d }

// stepCtx derives the per-step context.
func (c *Comm) stepCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.stepTimeout > 0 {
		return context.WithTimeout(ctx, c.stepTimeout)
	}
	return ctx, func() {}
}

// sendStep is one deadline-bounded send to the given communicator rank.
func (c *Comm) sendStep(ctx context.Context, dst int, vec []float32, tos uint8, tag int) error {
	sctx, cancel := c.stepCtx(ctx)
	defer cancel()
	if err := c.e.SendCtx(sctx, c.id(dst), vec, tos, tag); err != nil {
		return fmt.Errorf("mpi: rank %d send to rank %d: %w", c.Rank(), dst, err)
	}
	return nil
}

// recvStep is one deadline-bounded receive from the given communicator rank.
func (c *Comm) recvStep(ctx context.Context, src int, tag int) ([]float32, error) {
	sctx, cancel := c.stepCtx(ctx)
	defer cancel()
	rb, err := c.e.RecvCtx(sctx, c.id(src), tag)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d recv from rank %d: %w", c.Rank(), src, err)
	}
	return rb, nil
}

// Tag bases; collectives use disjoint spaces from internal/ring.
const (
	tagBcast   = 4000
	tagReduce  = 5000
	tagGather  = 6000
	tagBarrier = 7000
)

// AllReduce sums vec elementwise across all ranks, in place, using the
// gradient-centric ring exchange (Algorithm 1). All ranks must call it
// concurrently with equal-length vectors.
func (c *Comm) AllReduce(vec []float32) {
	if err := c.AllReduceCtx(context.Background(), vec); err != nil {
		panic(err.Error())
	}
}

// AllReduceCtx is the fault-tolerant AllReduce: deadline expiries and
// transport errors are returned, and the communicator's step timeout
// bounds each ring hop.
func (c *Comm) AllReduceCtx(ctx context.Context, vec []float32) error {
	return ring.AllReduceGroupCtx(ctx, c.e, c.members, vec, c.tos, c.finalize, ring.Options{StepTimeout: c.stepTimeout})
}

// Bcast distributes root's vec to all ranks, in place, over a binomial
// tree (log₂ p rounds, matching the (1+log p)·α latency term of the
// paper's cost model). Broadcast payloads are weights in this codebase, so
// they are never ToS-tagged regardless of CollectiveCommComp.
func (c *Comm) Bcast(vec []float32, root int) {
	if err := c.BcastCtx(context.Background(), vec, root); err != nil {
		panic(err.Error())
	}
}

// BcastCtx is the fault-tolerant Bcast.
func (c *Comm) BcastCtx(ctx context.Context, vec []float32, root int) error {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	// Rotate ranks so the root is virtual rank 0, then walk the binomial
	// tree from the widest stride down: at stride d, every rank that
	// already holds the data (vrank ≡ 0 mod 2d) forwards to vrank+d. A
	// rank receives exactly once, at the stride equal to its lowest set
	// bit, by which time its sender is guaranteed to hold the data.
	vrank := (rank - root + n) % n
	received := vrank == 0
	top := 1
	for top < n {
		top *= 2
	}
	for dist := top / 2; dist >= 1; dist /= 2 {
		switch {
		case vrank%(2*dist) == 0:
			if received && vrank+dist < n {
				peer := (vrank + dist + root) % n
				if err := c.sendStep(ctx, peer, vec, 0, tagBcast+dist); err != nil {
					return err
				}
			}
		case vrank%(2*dist) == dist:
			peer := (vrank - dist + root) % n
			rb, err := c.recvStep(ctx, peer, tagBcast+dist)
			if err != nil {
				return err
			}
			copy(vec, rb)
			received = true
		}
	}
	if !received {
		return fmt.Errorf("mpi: rank %d never received broadcast", rank)
	}
	return nil
}

// Reduce sums vec elementwise across ranks into root's vec (other ranks'
// vectors are left untouched), over a binomial tree. Reduce payloads are
// gradients, so the ToS flag applies.
func (c *Comm) Reduce(vec []float32, root int) {
	if err := c.ReduceCtx(context.Background(), vec, root); err != nil {
		panic(err.Error())
	}
}

// ReduceCtx is the fault-tolerant Reduce.
func (c *Comm) ReduceCtx(ctx context.Context, vec []float32, root int) error {
	return c.reduceTree(ctx, vec, root, c.tos, tagReduce)
}

// reduceTree is the binomial-tree reduction shared by ReduceCtx and the
// barrier (which forces compression off for its token).
func (c *Comm) reduceTree(ctx context.Context, vec []float32, root int, tos uint8, tagBase int) error {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return nil
	}
	vrank := (rank - root + n) % n
	acc := vec
	if vrank != 0 {
		acc = append([]float32(nil), vec...)
	}
	for dist := 1; dist < n; dist *= 2 {
		if vrank%(2*dist) == 0 {
			if vrank+dist < n {
				peer := (vrank + dist + root) % n
				rb, err := c.recvStep(ctx, peer, tagBase+dist)
				if err != nil {
					return err
				}
				for i, v := range rb {
					acc[i] += v
				}
			}
		} else if vrank%(2*dist) == dist {
			peer := (vrank - dist + root) % n
			if err := c.sendStep(ctx, peer, acc, tos, tagBase+dist); err != nil {
				return err
			}
			break
		}
	}
	return nil
}

// Gather collects every rank's vec at root, returned indexed by rank; other
// ranks receive nil. Vectors may differ in length.
func (c *Comm) Gather(vec []float32, root int) [][]float32 {
	out, err := c.GatherCtx(context.Background(), vec, root)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// GatherCtx is the fault-tolerant Gather.
func (c *Comm) GatherCtx(ctx context.Context, vec []float32, root int) ([][]float32, error) {
	n, rank := c.Size(), c.Rank()
	if rank != root {
		if err := c.sendStep(ctx, root, vec, c.tos, tagGather); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]float32, n)
	out[rank] = append([]float32(nil), vec...)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		rb, err := c.recvStep(ctx, r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = rb
	}
	return out, nil
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	if err := c.BarrierCtx(context.Background()); err != nil {
		panic(err.Error())
	}
}

// BarrierCtx is the fault-tolerant Barrier: it reduces a token to rank 0
// and broadcasts it back, with every hop deadline-bounded, so a crashed
// or partitioned rank turns the barrier into an error instead of a
// distributed hang.
func (c *Comm) BarrierCtx(ctx context.Context) error {
	token := []float32{1}
	// Barrier tokens never ride the lossy codec.
	if err := c.reduceTree(ctx, token, 0, 0, tagBarrier); err != nil {
		return err
	}
	return c.BcastCtx(ctx, token, 0)
}
