// Package mpi provides MPI-flavoured collective communication over the
// comm fabric, mirroring the software stack of the paper's Sec. VI-B: a
// default collective API plus CollectiveCommComp — the paper's
// MPI_collective_communication_comp — which propagates a per-communicator
// flag down to the transport and tags every packet of subsequent
// collectives with ToS 0x28, opting them into in-NIC lossy compression
// (the setsockopt path in Fig. 11).
package mpi

import (
	"fmt"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

// Comm is a communicator: one rank's handle on the collective group.
type Comm struct {
	e        *comm.Endpoint
	tos      uint8
	finalize func([]float32)
}

// World returns rank id's communicator over fabric f.
func World(f *comm.Fabric, id int) *Comm {
	return &Comm{e: f.Endpoint(id)}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.e.ID() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.e.N() }

// CollectiveCommComp enables or disables lossy compression for subsequent
// collectives on this communicator by setting the packet ToS field, exactly
// as the paper's specialized API does per TCP socket.
func (c *Comm) CollectiveCommComp(enabled bool) {
	if enabled {
		c.tos = comm.ToSCompress
	} else {
		c.tos = 0
	}
}

// Compressing reports whether collectives are currently ToS-tagged.
func (c *Comm) Compressing() bool { return c.tos == comm.ToSCompress }

// SetFinalize installs the function applied to this rank's fully
// aggregated ring block during AllReduce (see ring.AllReduce); required
// for bit-identical replicas when compression is enabled.
func (c *Comm) SetFinalize(f func([]float32)) { c.finalize = f }

// Tag bases; collectives use disjoint spaces from internal/ring.
const (
	tagBcast   = 4000
	tagReduce  = 5000
	tagGather  = 6000
	tagBarrier = 7000
)

// AllReduce sums vec elementwise across all ranks, in place, using the
// gradient-centric ring exchange (Algorithm 1). All ranks must call it
// concurrently with equal-length vectors.
func (c *Comm) AllReduce(vec []float32) {
	ring.AllReduce(c.e, vec, c.tos, c.finalize)
}

// Bcast distributes root's vec to all ranks, in place, over a binomial
// tree (log₂ p rounds, matching the (1+log p)·α latency term of the
// paper's cost model). Broadcast payloads are weights in this codebase, so
// they are never ToS-tagged regardless of CollectiveCommComp.
func (c *Comm) Bcast(vec []float32, root int) {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	// Rotate ranks so the root is virtual rank 0, then walk the binomial
	// tree from the widest stride down: at stride d, every rank that
	// already holds the data (vrank ≡ 0 mod 2d) forwards to vrank+d. A
	// rank receives exactly once, at the stride equal to its lowest set
	// bit, by which time its sender is guaranteed to hold the data.
	vrank := (rank - root + n) % n
	received := vrank == 0
	top := 1
	for top < n {
		top *= 2
	}
	for dist := top / 2; dist >= 1; dist /= 2 {
		switch {
		case vrank%(2*dist) == 0:
			if received && vrank+dist < n {
				peer := (vrank + dist + root) % n
				c.e.Send(peer, vec, 0, tagBcast+dist)
			}
		case vrank%(2*dist) == dist:
			peer := (vrank - dist + root) % n
			copy(vec, c.e.Recv(peer, tagBcast+dist))
			received = true
		}
	}
	if !received {
		panic(fmt.Sprintf("mpi: rank %d never received broadcast", rank))
	}
}

// Reduce sums vec elementwise across ranks into root's vec (other ranks'
// vectors are left untouched), over a binomial tree. Reduce payloads are
// gradients, so the ToS flag applies.
func (c *Comm) Reduce(vec []float32, root int) {
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vrank := (rank - root + n) % n
	acc := vec
	if vrank != 0 {
		acc = append([]float32(nil), vec...)
	}
	for dist := 1; dist < n; dist *= 2 {
		if vrank%(2*dist) == 0 {
			if vrank+dist < n {
				peer := (vrank + dist + root) % n
				rb := c.e.Recv(peer, tagReduce+dist)
				for i, v := range rb {
					acc[i] += v
				}
			}
		} else if vrank%(2*dist) == dist {
			peer := (vrank - dist + root) % n
			c.e.Send(peer, acc, c.tos, tagReduce+dist)
			break
		}
	}
}

// Gather collects every rank's vec at root, returned indexed by rank; other
// ranks receive nil. Vectors may differ in length.
func (c *Comm) Gather(vec []float32, root int) [][]float32 {
	n, rank := c.Size(), c.Rank()
	if rank != root {
		c.e.Send(root, vec, c.tos, tagGather)
		return nil
	}
	out := make([][]float32, n)
	out[rank] = append([]float32(nil), vec...)
	for r := 0; r < n; r++ {
		if r == root {
			continue
		}
		out[r] = c.e.Recv(r, tagGather)
	}
	return out
}

// Barrier blocks until all ranks have entered it.
func (c *Comm) Barrier() {
	// Reduce a token to rank 0, then broadcast it back.
	token := []float32{1}
	c.reduceNoToS(token, 0)
	c.Bcast(token, 0)
}

// reduceNoToS is Reduce with compression forced off (barrier tokens should
// not depend on the codec).
func (c *Comm) reduceNoToS(vec []float32, root int) {
	saved := c.tos
	c.tos = 0
	defer func() { c.tos = saved }()
	// Reuse the Reduce topology with a distinct tag space by shifting the
	// payload through tagBarrier-based tags.
	n, rank := c.Size(), c.Rank()
	if n == 1 {
		return
	}
	vrank := (rank - root + n) % n
	acc := vec
	if vrank != 0 {
		acc = append([]float32(nil), vec...)
	}
	for dist := 1; dist < n; dist *= 2 {
		if vrank%(2*dist) == 0 {
			if vrank+dist < n {
				peer := (vrank + dist + root) % n
				rb := c.e.Recv(peer, tagBarrier+dist)
				for i, v := range rb {
					acc[i] += v
				}
			}
		} else if vrank%(2*dist) == dist {
			peer := (vrank - dist + root) % n
			c.e.Send(peer, acc, 0, tagBarrier+dist)
			break
		}
	}
}
