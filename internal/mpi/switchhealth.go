package mpi

import (
	"context"
	"errors"

	"inceptionn/internal/fault"
)

// Switch health monitoring: the in-network reduction unit sits on the
// critical path of every iteration, so a training loop needs to decide —
// from nothing but the error its exchange returned — whether the switch
// is dead (fall back to a host-based collective), merely slow, or whether
// the fault is its own. The grading mirrors internal/elastic's suspect
// causes: transport self-reports are hard evidence, deadline expiries are
// soft (a stall could be a straggling port), and protocol violations are
// hard (the stream itself is broken, whoever caused it).

// SwitchFaultClass is the graded failure class of a switch-collective
// error.
type SwitchFaultClass int

const (
	// SwitchFaultNone: no error.
	SwitchFaultNone SwitchFaultClass = iota
	// SwitchFaultUnrelated: the operation was cancelled from outside
	// (context.Canceled) — no evidence against the switch.
	SwitchFaultUnrelated
	// SwitchFaultStall: a deadline expired mid-stream. Soft evidence: the
	// switch link is up but a combine never arrived — a dead switch and a
	// straggling port look identical from one observation.
	SwitchFaultStall
	// SwitchFaultProtocol: a mis-sized chunk or a rejected tag window —
	// the combine stream violated its own protocol. Hard evidence.
	SwitchFaultProtocol
	// SwitchFaultLink: the transport itself gave up — a crashed node,
	// an exhausted retransmission budget (partitioned link), or a closed
	// peer. Hard evidence.
	SwitchFaultLink
)

// String implements fmt.Stringer.
func (c SwitchFaultClass) String() string {
	switch c {
	case SwitchFaultNone:
		return "none"
	case SwitchFaultUnrelated:
		return "unrelated"
	case SwitchFaultStall:
		return "stall"
	case SwitchFaultProtocol:
		return "protocol"
	case SwitchFaultLink:
		return "link"
	default:
		return "unknown"
	}
}

// Hard reports whether the class alone confirms a switch failure (soft
// evidence needs the monitor's strike policy).
func (c SwitchFaultClass) Hard() bool {
	return c == SwitchFaultProtocol || c == SwitchFaultLink
}

// GradeSwitchFault classifies an error from the switch collective and
// returns the class plus a suspect-cause string in the style of the
// elastic layer's death grading. A nil error grades as SwitchFaultNone.
func GradeSwitchFault(err error) (SwitchFaultClass, string) {
	switch {
	case err == nil:
		return SwitchFaultNone, ""
	case errors.Is(err, context.Canceled):
		return SwitchFaultUnrelated, "operation cancelled: no evidence against the switch"
	case errors.Is(err, fault.ErrCrashed):
		return SwitchFaultLink, "transport self-report: process crash"
	case errors.Is(err, fault.ErrMaxRetries):
		return SwitchFaultLink, "switch link down: retransmission budget exhausted, partition suspected"
	case errors.Is(err, fault.ErrClosed):
		return SwitchFaultLink, "switch link closed: peer torn down"
	case errors.Is(err, ErrSwitchWindow), errors.Is(err, ErrSwitchProtocol):
		return SwitchFaultProtocol, "switch protocol violation: missed or mangled combine"
	case errors.Is(err, context.DeadlineExceeded):
		return SwitchFaultStall, "switch stream stalled: link up, combine never arrived — hang or crash suspected"
	default:
		// Unrecognized transport errors (torn frames, tag mismatches from
		// a desynced stream) are protocol-grade: the stream is broken.
		return SwitchFaultProtocol, "switch stream desynced: " + err.Error()
	}
}

// SwitchMonitor accumulates graded evidence against the switch and
// decides when a failure is confirmed. Hard classes confirm immediately;
// stalls are soft and must repeat SoftStrikes times consecutively (a
// successful exchange clears the count), so a single straggling port
// under a generous StepTimeout does not condemn a live switch.
//
// The monitor is a per-observer policy object, not shared state: each
// worker grades its own exchange errors. It is not safe for concurrent
// use.
type SwitchMonitor struct {
	// SoftStrikes is how many consecutive stall observations confirm a
	// failure; 0 means the default of 1 (one full exchange timeout is
	// already StepTimeout-bounded evidence).
	SoftStrikes int

	strikes int
}

// softLimit resolves the strike policy.
func (m *SwitchMonitor) softLimit() int {
	if m.SoftStrikes <= 0 {
		return 1
	}
	return m.SoftStrikes
}

// Observe grades one exchange outcome. confirmed is true when the
// accumulated evidence establishes switch failure; class and cause
// describe this observation.
func (m *SwitchMonitor) Observe(err error) (confirmed bool, class SwitchFaultClass, cause string) {
	class, cause = GradeSwitchFault(err)
	switch class {
	case SwitchFaultNone:
		m.strikes = 0
		return false, class, cause
	case SwitchFaultUnrelated:
		return false, class, cause
	case SwitchFaultStall:
		m.strikes++
		return m.strikes >= m.softLimit(), class, cause
	default:
		m.strikes = 0
		return true, class, cause
	}
}
