package fault

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

// wrapFabric builds one chaos wrapper per node over a fresh in-process
// fabric.
func wrapFabric(n int, cfg Config, opts Options) []*Peer {
	f := comm.NewFabric(n, nil)
	inj := NewInjector(n, cfg)
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = Wrap(f.Endpoint(i), inj, opts)
	}
	return peers
}

func closeAll(peers []*Peer) {
	for _, p := range peers {
		p.Close()
	}
}

func TestReliableDeliveryUnderChaos(t *testing.T) {
	peers := wrapFabric(2, Config{
		Seed: 11,
		Default: LinkFaults{
			DropRate: 0.1, CorruptRate: 0.1, DupRate: 0.1,
			DelayRate: 0.05, Delay: time.Millisecond,
		},
	}, Options{RTO: 5 * time.Millisecond})
	defer closeAll(peers)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const rounds = 60
	errCh := make(chan error, 1)
	go func() {
		for r := 0; r < rounds; r++ {
			payload := []float32{float32(r), float32(r) * 0.5, -float32(r)}
			if err := peers[0].SendCtx(ctx, 1, payload, 0, r); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for r := 0; r < rounds; r++ {
		got, err := peers[1].RecvCtx(ctx, 0, r)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if got[0] != float32(r) || got[1] != float32(r)*0.5 || got[2] != -float32(r) {
			t.Fatalf("round %d: corrupted delivery %v", r, got)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	// The chaos rates guarantee recovery work happened over 60 frames.
	if peers[0].LinkStats(1).Retransmits.Load() == 0 && peers[1].LinkStats(0).Nacks.Load() == 0 {
		t.Error("no retransmissions or NACKs recorded under 10% drop + 10% corruption")
	}
}

// TestRingAllReduceUnderChaos is the satellite requirement: the ring
// exchange over a lossy fabric (drops, corruption, duplication, delay at
// 1–10% rates) must still converge to the bitwise-correct sum on every
// node.
func TestRingAllReduceUnderChaos(t *testing.T) {
	const n = 4
	peers := wrapFabric(n, Config{
		Seed: 23,
		Default: LinkFaults{
			DropRate: 0.05, CorruptRate: 0.05, DupRate: 0.03,
			DelayRate: 0.01, Delay: 2 * time.Millisecond,
		},
	}, Options{RTO: 5 * time.Millisecond})
	defer closeAll(peers)

	rng := rand.New(rand.NewSource(9))
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = make([]float32, 400)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64())
		}
	}
	// Reference: the same exchange on a pristine fabric (float32 addition
	// order is fixed by the algorithm, so results must match bitwise).
	ref := runRing(t, wrapFabric(n, Config{}, Options{}), inputs)
	got := runRing(t, peers, inputs)
	for node := range got {
		for j := range got[node] {
			if got[node][j] != ref[node][j] {
				t.Fatalf("node %d elem %d: %g != reference %g", node, j, got[node][j], ref[node][j])
			}
		}
	}
}

func runRing(t *testing.T, peers []*Peer, inputs [][]float32) [][]float32 {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make([][]float32, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for id := range peers {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[id]...)
			errs[id] = ring.AllReduceCtx(ctx, peers[id], g, 0, nil, ring.Options{})
			out[id] = g
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
	}
	return out
}

// TestPartitionReturnsTimeout is the satellite requirement: a permanent
// partition must surface as a timeout error, never a hang.
func TestPartitionReturnsTimeout(t *testing.T) {
	const n = 4
	peers := wrapFabric(n, Config{
		Seed:  1,
		Links: map[Link]LinkFaults{{0, 1}: Partition(0)},
	}, Options{RTO: 5 * time.Millisecond, MaxAttempts: 4})
	defer closeAll(peers)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	inputs := make([][]float32, n)
	for i := range inputs {
		inputs[i] = []float32{1, 2, 3, 4}
	}
	errs := make([]error, n)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[id]...)
			errs[id] = ring.AllReduceCtx(ctx, peers[id], g, 0, nil, ring.Options{StepTimeout: time.Second})
		}(id)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("partitioned AllReduce hung")
	}
	// Node 0 sends into the blackhole and must exhaust its retries; its
	// downstream neighbour starves and must hit its deadline.
	if errs[0] == nil || !errors.Is(errs[0], ErrMaxRetries) {
		t.Errorf("node 0: want ErrMaxRetries, got %v", errs[0])
	}
	if errs[1] == nil || !errors.Is(errs[1], context.DeadlineExceeded) {
		t.Errorf("node 1: want deadline error, got %v", errs[1])
	}
}

// TestCrashedNodeSurfacesError checks the crash schedule: the crashed
// node's own operations fail with ErrCrashed and the survivors' deadline
// fires instead of hanging.
func TestCrashedNodeSurfacesError(t *testing.T) {
	const n = 3
	peers := wrapFabric(n, Config{
		Seed:       1,
		CrashAfter: map[int]uint64{2: 1},
	}, Options{RTO: 5 * time.Millisecond, MaxAttempts: 3})
	defer closeAll(peers)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := []float32{1, 2, 3}
			errs[id] = ring.AllReduceCtx(ctx, peers[id], g, 0, nil, ring.Options{})
		}(id)
	}
	wg.Wait()
	if !errors.Is(errs[2], ErrCrashed) {
		t.Errorf("crashed node: want ErrCrashed, got %v", errs[2])
	}
	failed := 0
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed < 2 {
		t.Errorf("only %d nodes observed the crash", failed)
	}
}

func TestStragglerStatsSurface(t *testing.T) {
	peers := wrapFabric(2, Config{
		Seed:  1,
		Links: map[Link]LinkFaults{{0, 1}: {DelayRate: 1, Delay: 30 * time.Millisecond}},
	}, Options{RTO: 200 * time.Millisecond})
	defer closeAll(peers)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() {
		_ = peers[0].SendCtx(ctx, 1, []float32{1}, 0, 0)
	}()
	if _, err := peers[1].RecvCtx(ctx, 0, 0); err != nil {
		t.Fatal(err)
	}
	if w := peers[1].LinkStats(0).MaxRecvWaitNanos.Load(); w < (20 * time.Millisecond).Nanoseconds() {
		t.Errorf("straggler link peak recv wait %v, want >= 20ms", time.Duration(w))
	}
}

func TestTagMismatchIsError(t *testing.T) {
	peers := wrapFabric(2, Config{}, Options{})
	defer closeAll(peers)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go func() { _ = peers[0].SendCtx(ctx, 1, []float32{1}, 0, 5) }()
	if _, err := peers[1].RecvCtx(ctx, 0, 6); err == nil {
		t.Fatal("tag mismatch did not error")
	}
}
