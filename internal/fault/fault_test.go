package fault

import (
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 7,
		Default: LinkFaults{
			DropRate: 0.1, CorruptRate: 0.1, DupRate: 0.05,
			DelayRate: 0.05, Delay: time.Millisecond,
		},
	}
	a := NewInjector(4, cfg)
	b := NewInjector(4, cfg)
	for seq := uint64(0); seq < 500; seq++ {
		for attempt := 0; attempt < 3; attempt++ {
			va := a.Decide(0, 1, seq, attempt)
			vb := b.Decide(0, 1, seq, attempt)
			if va != vb {
				t.Fatalf("seq %d attempt %d: %+v != %+v", seq, attempt, va, vb)
			}
		}
	}
}

func TestInjectorSeedChangesDecisions(t *testing.T) {
	mk := func(seed int64) *Injector {
		return NewInjector(2, Config{Seed: seed, Default: LinkFaults{DropRate: 0.5}})
	}
	a, b := mk(1), mk(2)
	same := 0
	for seq := uint64(0); seq < 200; seq++ {
		if a.Decide(0, 1, seq, 0).Drop == b.Decide(0, 1, seq, 0).Drop {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical drop decisions")
	}
}

func TestInjectorRates(t *testing.T) {
	inj := NewInjector(2, Config{Seed: 3, Default: LinkFaults{DropRate: 0.05}})
	drops := 0
	const trials = 20000
	for seq := uint64(0); seq < trials; seq++ {
		if inj.Decide(0, 1, seq, 0).Drop {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.035 || rate > 0.065 {
		t.Fatalf("drop rate %.4f far from configured 0.05", rate)
	}
}

func TestInjectorScheduleWindow(t *testing.T) {
	inj := NewInjector(2, Config{
		Seed:    1,
		Default: LinkFaults{DropRate: 1, From: 10, Until: 20},
	})
	for seq := uint64(0); seq < 30; seq++ {
		drop := inj.Decide(0, 1, seq, 0).Drop
		want := seq >= 10 && seq < 20
		if drop != want {
			t.Fatalf("seq %d: drop=%v, want %v", seq, drop, want)
		}
	}
}

func TestInjectorPerLinkOverride(t *testing.T) {
	inj := NewInjector(3, Config{
		Seed:  1,
		Links: map[Link]LinkFaults{{0, 1}: {DropRate: 1}},
	})
	for seq := uint64(0); seq < 10; seq++ {
		if !inj.Decide(0, 1, seq, 0).Drop {
			t.Fatal("override link did not drop")
		}
		if inj.Decide(1, 2, seq, 0).Drop {
			t.Fatal("default link dropped with zero config")
		}
	}
}

func TestInjectorPartition(t *testing.T) {
	inj := NewInjector(2, Config{
		Seed:  1,
		Links: map[Link]LinkFaults{{0, 1}: Partition(5)},
	})
	for seq := uint64(0); seq < 10; seq++ {
		want := seq >= 5
		if inj.Partitioned(0, 1, seq) != want {
			t.Fatalf("seq %d: Partitioned != %v", seq, want)
		}
		if inj.Decide(0, 1, seq, 7).Drop != want {
			t.Fatalf("seq %d: partition must drop every attempt", seq)
		}
	}
}

func TestInjectorCrashSchedule(t *testing.T) {
	inj := NewInjector(2, Config{Seed: 1, CrashAfter: map[int]uint64{1: 3}})
	if inj.Crashed(1) {
		t.Fatal("crashed before any send")
	}
	for i := 0; i < 3; i++ {
		if inj.RecordSend(1) {
			t.Fatalf("crashed at send %d, budget is 3", i)
		}
	}
	if !inj.RecordSend(1) {
		t.Fatal("did not crash after budget")
	}
	if !inj.Crashed(1) {
		t.Fatal("Crashed() disagrees with RecordSend")
	}
	if inj.RecordSend(0) || inj.Crashed(0) {
		t.Fatal("unscheduled node crashed")
	}
}
