package fault

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"inceptionn/internal/comm"
)

// Errors surfaced by the fault-tolerant wrapper.
var (
	// ErrCrashed marks an operation on a node past its scheduled crash.
	ErrCrashed = errors.New("fault: node crashed")
	// ErrMaxRetries marks a send whose retransmission budget ran out
	// (e.g. the link is partitioned).
	ErrMaxRetries = errors.New("fault: retransmission budget exhausted")
	// ErrClosed marks an operation on a closed wrapper.
	ErrClosed = errors.New("fault: peer closed")
)

// Transport is the raw-link surface the wrapper runs over: ordered,
// per-link message streams with an untagged receive primitive the link
// pumps demultiplex. *comm.Endpoint implements it.
type Transport interface {
	ID() int
	N() int
	Send(dst int, payload []float32, tos uint8, tag int)
	RecvMessageCtx(ctx context.Context, src int) ([]float32, int, error)
}

// Frame kinds carried in the header's first float.
const (
	kindData float32 = 0
	kindAck  float32 = 1
	kindNack float32 = 2
)

// headerLen is the number of float32 slots prepended to each payload:
// [kind, seq, tag, crcLo, crcHi]. The CRC32-C of the payload bytes is
// split into two 16-bit halves stored as exact float32 whole numbers, so
// no header word ever needs a non-representable bit pattern.
const headerLen = 5

// Options tune the wrapper's recovery protocol.
type Options struct {
	// RTO is the initial retransmission timeout; it doubles every
	// attempt. Default 20ms.
	RTO time.Duration
	// MaxAttempts caps transmissions per frame (first try included).
	// Default 8.
	MaxAttempts int
	// InboxDepth is the per-link buffer of delivered frames. Default 256.
	InboxDepth int
	// Finalize, when set, is applied in place to a compressed data
	// frame's payload before it is checksummed. It must be the transport
	// codec's roundtrip (idempotent), so the payload the receiver
	// decompresses is bit-identical to the one the sender checksummed —
	// without it every lossy-compressed frame would NACK forever. The
	// header words need no such treatment: they are all 0 or whole
	// numbers ≥ 1, which the INCEPTIONN codec stores exactly (TagZero
	// and TagNone respectively).
	Finalize func([]float32)
}

func (o Options) withDefaults() Options {
	if o.RTO <= 0 {
		o.RTO = 20 * time.Millisecond
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.InboxDepth <= 0 {
		o.InboxDepth = 256
	}
	return o
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// payloadCRC checksums the bit patterns of the payload floats.
func payloadCRC(payload []float32) uint32 {
	h := crc32.New(crcTable)
	var b [4]byte
	for _, v := range payload {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
		h.Write(b[:])
	}
	return h.Sum32()
}

type delivered struct {
	tag     int
	payload []float32
}

type ackEvent struct {
	seq  uint64
	nack bool
}

// Peer wraps a Transport with deterministic chaos injection and the
// stop-and-wait ARQ that recovers from it: data frames carry a CRC32-C
// checksum and per-link sequence number; a background pump per incoming
// link verifies, dedupes, ACKs good frames and NACKs corrupt ones; the
// sender retransmits on NACK or timeout with exponential backoff until
// ACKed or the attempt budget runs out. Control frames (ACK/NACK) ride
// the underlying reliable stream and are never faulted — the chaos models
// a lossy data plane under a reliable (in-process) control plane.
//
// A Peer owns its Transport exclusively: no other goroutine may call the
// transport's receive methods while the wrapper is live.
type Peer struct {
	t    Transport
	inj  *Injector
	opts Options

	ctx    context.Context
	cancel context.CancelFunc

	inbox []chan delivered // inbox[src]: verified in-order frames
	acks  []chan ackEvent  // acks[dst]: control events from link dst→me

	sendSeq []uint64 // next data seq per dst (sender goroutine per link)
	sendMu  []sync.Mutex

	stats []*comm.LinkStats // stats[peer]: this node's view of link peer↔me

	closed atomic.Bool
	wg     sync.WaitGroup
}

var _ comm.CtxPeer = (*Peer)(nil)

// Wrap builds the chaos wrapper around t using injector inj (nil for no
// faults — the wrapper then just adds checksums and ACK traffic).
func Wrap(t Transport, inj *Injector, opts Options) *Peer {
	n := t.N()
	if inj == nil {
		inj = NewInjector(n, Config{})
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Peer{
		t:       t,
		inj:     inj,
		opts:    opts.withDefaults(),
		ctx:     ctx,
		cancel:  cancel,
		inbox:   make([]chan delivered, n),
		acks:    make([]chan ackEvent, n),
		sendSeq: make([]uint64, n),
		sendMu:  make([]sync.Mutex, n),
		stats:   make([]*comm.LinkStats, n),
	}
	for i := 0; i < n; i++ {
		if i == t.ID() {
			continue
		}
		p.inbox[i] = make(chan delivered, p.opts.InboxDepth)
		p.acks[i] = make(chan ackEvent, 64)
		p.stats[i] = &comm.LinkStats{}
		p.wg.Add(1)
		go p.pump(i)
	}
	return p
}

// Close stops the link pumps. Outstanding operations return errors.
func (p *Peer) Close() {
	if p.closed.CompareAndSwap(false, true) {
		p.cancel()
		p.wg.Wait()
	}
}

// ID implements comm.Peer.
func (p *Peer) ID() int { return p.t.ID() }

// N implements comm.Peer.
func (p *Peer) N() int { return p.t.N() }

// LinkStats returns this node's recovery counters for traffic exchanged
// with peer (NACKs it issued, retransmits it performed, receive waits).
func (p *Peer) LinkStats(peer int) *comm.LinkStats { return p.stats[peer] }

// Send implements comm.Peer by panicking on unrecoverable faults, matching
// the legacy transport contract.
func (p *Peer) Send(dst int, payload []float32, tos uint8, tag int) {
	if err := p.SendCtx(context.Background(), dst, payload, tos, tag); err != nil {
		panic(fmt.Sprintf("fault: send %d->%d: %v", p.ID(), dst, err))
	}
}

// Recv implements comm.Peer.
func (p *Peer) Recv(src int, tag int) []float32 {
	out, err := p.RecvCtx(context.Background(), src, tag)
	if err != nil {
		panic(fmt.Sprintf("fault: recv %d<-%d: %v", p.ID(), src, err))
	}
	return out
}

// SendCtx transmits payload reliably: it blocks until the receiver ACKs
// the frame, retransmitting through injected drops and corruption, and
// fails with ErrMaxRetries when the budget is exhausted (a partitioned
// link) or ErrCrashed past this node's scheduled crash.
func (p *Peer) SendCtx(ctx context.Context, dst int, payload []float32, tos uint8, tag int) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if p.inj.RecordSend(p.ID()) {
		return fmt.Errorf("fault: node %d send: %w", p.ID(), ErrCrashed)
	}
	p.sendMu[dst].Lock()
	defer p.sendMu[dst].Unlock()
	seq := p.sendSeq[dst]
	p.sendSeq[dst]++

	frame := make([]float32, headerLen+len(payload))
	frame[0] = kindData
	frame[1] = float32(seq % (1 << 24))
	frame[2] = float32(tag)
	copy(frame[headerLen:], payload)
	if p.opts.Finalize != nil && tos == comm.ToSCompress {
		p.opts.Finalize(frame[headerLen:])
	}
	crc := payloadCRC(frame[headerLen:])
	frame[3] = float32(crc & 0xFFFF)
	frame[4] = float32(crc >> 16)

	rto := p.opts.RTO
	for attempt := 0; attempt < p.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.stats[dst].Retransmits.Add(1)
		}
		v := p.inj.Decide(p.ID(), dst, seq, attempt)
		if v.Delay > 0 {
			select {
			case <-time.After(v.Delay):
			case <-ctx.Done():
				return ctx.Err()
			case <-p.ctx.Done():
				return ErrClosed
			}
		}
		if !v.Drop {
			out := frame
			if v.CorruptBit >= 0 && len(payload) > 0 {
				out = append([]float32(nil), frame...)
				bit := v.CorruptBit % (32 * len(payload))
				idx := headerLen + bit/32
				out[idx] = math.Float32frombits(math.Float32bits(out[idx]) ^ 1<<(bit%32))
			}
			p.t.Send(dst, out, tos, tag)
			if v.Duplicate {
				p.t.Send(dst, out, tos, tag)
			}
		}
		// Await the receiver's verdict for this seq.
		timer := time.NewTimer(rto)
	wait:
		for {
			select {
			case ev := <-p.acks[dst]:
				if ev.seq < seq {
					continue // stale event from a duplicate
				}
				if !ev.nack {
					timer.Stop()
					return nil
				}
				break wait // NACK: retransmit immediately
			case <-timer.C:
				break wait
			case <-ctx.Done():
				timer.Stop()
				p.stats[dst].Timeouts.Add(1)
				return fmt.Errorf("fault: send %d->%d seq %d: %w", p.ID(), dst, seq, ctx.Err())
			case <-p.ctx.Done():
				timer.Stop()
				return ErrClosed
			}
		}
		timer.Stop()
		rto *= 2
	}
	return fmt.Errorf("fault: send %d->%d seq %d after %d attempts: %w",
		p.ID(), dst, seq, p.opts.MaxAttempts, ErrMaxRetries)
}

// RecvCtx returns the next verified in-order payload from src, blocking
// until ctx is done. A tag mismatch is returned as a protocol error.
func (p *Peer) RecvCtx(ctx context.Context, src int, tag int) ([]float32, error) {
	payload, got, err := p.RecvMessageCtx(ctx, src)
	if err != nil {
		return nil, err
	}
	if got != tag {
		return nil, fmt.Errorf("fault: node %d expected tag %d from %d, got %d", p.ID(), tag, src, got)
	}
	return payload, nil
}

// RecvMessageCtx receives the next verified in-order payload from src
// regardless of its tag, returning the payload and the tag it carried.
// It is the demultiplexing primitive the elastic layer's epoch-filtering
// receiver is built on (stale-epoch frames from an aborted exchange are
// inspected and discarded by tag).
func (p *Peer) RecvMessageCtx(ctx context.Context, src int) ([]float32, int, error) {
	if p.closed.Load() {
		return nil, 0, ErrClosed
	}
	if p.inj.Crashed(p.ID()) {
		return nil, 0, fmt.Errorf("fault: node %d recv: %w", p.ID(), ErrCrashed)
	}
	start := time.Now()
	select {
	case d := <-p.inbox[src]:
		p.stats[src].ObserveRecvWait(time.Since(start).Nanoseconds())
		return d.payload, d.tag, nil
	case <-ctx.Done():
		p.stats[src].Timeouts.Add(1)
		return nil, 0, fmt.Errorf("fault: recv %d<-%d: %w", p.ID(), src, ctx.Err())
	case <-p.ctx.Done():
		return nil, 0, ErrClosed
	}
}

// sendCtl emits an ACK or NACK for seq on the (reliable) control plane.
func (p *Peer) sendCtl(dst int, kind float32, seq uint64) {
	ctl := []float32{kind, float32(seq % (1 << 24)), 0, 0, 0}
	p.t.Send(dst, ctl, 0, 0)
}

// pump is the per-link demultiplexer: it owns all receives from src,
// verifying and acknowledging data frames and routing control events to
// the sender side.
func (p *Peer) pump(src int) {
	defer p.wg.Done()
	var expected uint64
	for {
		frame, wireTag, err := p.t.RecvMessageCtx(p.ctx, src)
		if err != nil {
			return
		}
		if len(frame) < headerLen {
			continue // not a protocol frame; drop
		}
		seq := uint64(frame[1])
		switch frame[0] {
		case kindAck, kindNack:
			select {
			case p.acks[src] <- ackEvent{seq: seq, nack: frame[0] == kindNack}:
			case <-p.ctx.Done():
				return
			}
		case kindData:
			payload := frame[headerLen:]
			crc := payloadCRC(payload)
			if float32(crc&0xFFFF) != frame[3] || float32(crc>>16) != frame[4] {
				p.stats[src].Nacks.Add(1)
				p.sendCtl(src, kindNack, seq)
				continue
			}
			switch {
			case seq == expected%(1<<24):
				expected++
				p.sendCtl(src, kindAck, seq)
				select {
				case p.inbox[src] <- delivered{tag: wireTag, payload: append([]float32(nil), payload...)}:
				case <-p.ctx.Done():
					return
				}
			default:
				// Duplicate of an already-delivered frame: re-ACK it so a
				// sender stuck on a lost ACK makes progress; never deliver
				// twice.
				p.sendCtl(src, kindAck, seq)
			}
		}
	}
}
