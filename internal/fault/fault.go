// Package fault is the chaos-engineering layer of the transport stack: a
// deterministic, seeded fault injector plus a comm.Peer wrapper that
// subjects the collective algorithms to frame drops, bit-flip corruption,
// duplication, reordering delay, per-link partitions, and node crashes —
// the anomaly classes a production 10 GbE fabric actually exhibits — while
// the recovery machinery (checksums, NACK/retransmit, deadlines) keeps the
// exchange converging to the exact expected sums.
//
// Every fault decision is a pure function of (seed, src, dst, seq, attempt),
// so a chaos run is bit-reproducible regardless of goroutine scheduling:
// re-running with the same seed injects the same faults at the same frames.
package fault

import (
	"sync/atomic"
	"time"
)

// Link identifies a directed link src→dst.
type Link struct {
	Src, Dst int
}

// LinkFaults configures the fault mix on one directed link. Rates are
// probabilities in [0,1] evaluated independently per frame transmission
// attempt. The schedule window [From, Until) restricts injection to a
// range of per-link frame sequence numbers; Until == 0 means unbounded.
type LinkFaults struct {
	// DropRate silently discards the frame: the bytes never reach the
	// wire, modelling congestion loss or a flapping switch port.
	DropRate float64
	// CorruptRate flips one bit of the frame payload after the integrity
	// checksum is computed, modelling on-wire corruption that the
	// receiver's CRC check catches and NACKs.
	CorruptRate float64
	// TruncateRate shortens a compressed frame body before the checksum
	// is computed, modelling a glitching compression engine: the CRC
	// validates but decompression fails, forcing the degraded raw-frame
	// fallback path.
	TruncateRate float64
	// DupRate transmits the frame twice, exercising receiver-side
	// dedupe.
	DupRate float64
	// DelayRate stalls the frame by Delay before transmission, modelling
	// a straggler link.
	DelayRate float64
	// Delay is the stall applied when a DelayRate draw fires.
	Delay time.Duration

	// From and Until bound the injection window by per-link frame
	// sequence number: faults fire only for From <= seq < Until
	// (Until == 0 means no upper bound).
	From, Until uint64

	// FromElapsed and UntilElapsed additionally bound the window by wall
	// time since the injector's creation: faults fire only while
	// FromElapsed <= elapsed < UntilElapsed (zero UntilElapsed means no
	// upper bound; both zero disables the time gate). Unlike the sequence
	// window this trades bit-reproducibility for duration-faithful
	// scenarios — an outage that must outlast a failure detector's
	// staleness limit and then heal is a property of wall time, not of how
	// many frames the victim happened to attempt. Use it for partition /
	// heal schedules; keep bitwise-replay schedules on From/Until.
	FromElapsed, UntilElapsed time.Duration

	// PartitionFrom blackholes the link permanently from the given frame
	// sequence number onward (every later transmission is dropped and no
	// retransmission can succeed). nil means never.
	PartitionFrom *uint64
}

// Partition returns a LinkFaults that blackholes a link from frame seq
// onward.
func Partition(seq uint64) LinkFaults {
	return LinkFaults{PartitionFrom: &seq}
}

// Config is a full chaos schedule for a cluster.
type Config struct {
	// Seed drives every probabilistic decision; runs with equal seeds
	// and schedules inject identical faults.
	Seed int64
	// Default applies to every link without an explicit override.
	Default LinkFaults
	// Links overrides the default on specific directed links.
	Links map[Link]LinkFaults
	// CrashAfter maps a node id to the number of frame sends after which
	// the node "crashes": every later Send and Recv on that node fails
	// with ErrCrashed.
	CrashAfter map[int]uint64
}

// Verdict is the injector's decision for one frame transmission attempt.
type Verdict struct {
	// Drop discards the frame entirely.
	Drop bool
	// CorruptBit >= 0 flips that bit offset (mod payload length) after
	// checksumming; -1 leaves the frame intact.
	CorruptBit int
	// TruncateBytes > 0 removes that many trailing bytes from a
	// compressed body before checksumming.
	TruncateBytes int
	// Duplicate transmits the frame twice.
	Duplicate bool
	// Delay stalls the attempt before transmission.
	Delay time.Duration
}

// Injector makes deterministic per-frame fault decisions from a Config.
// It is safe for concurrent use: all state is immutable after construction
// except the per-node crash counters, which are atomic.
type Injector struct {
	cfg     Config
	start   time.Time // epoch for FromElapsed/UntilElapsed windows
	crashed []crashCounter
}

type crashCounter struct {
	limit atomic.Uint64 // 0 = never crashes
	sent  atomic.Uint64
}

// NewInjector compiles a Config for a cluster of n nodes.
func NewInjector(n int, cfg Config) *Injector {
	inj := &Injector{cfg: cfg, start: time.Now(), crashed: make([]crashCounter, n)}
	for id, after := range cfg.CrashAfter {
		if id >= 0 && id < n {
			inj.crashed[id].limit.Store(after + 1) // 0 sends allowed means limit 1
		}
	}
	return inj
}

// linkFaults resolves the fault mix for a directed link.
func (inj *Injector) linkFaults(src, dst int) LinkFaults {
	if lf, ok := inj.cfg.Links[Link{src, dst}]; ok {
		return lf
	}
	return inj.cfg.Default
}

// splitmix64 is the deterministic PRNG behind every fault draw.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draws returns k uniform floats in [0,1) keyed by the frame identity.
func (inj *Injector) draw(src, dst int, seq uint64, attempt int, stream uint64) float64 {
	h := uint64(inj.cfg.Seed)
	h = splitmix64(h ^ uint64(src)<<40 ^ uint64(dst)<<20 ^ seq)
	h = splitmix64(h ^ uint64(attempt)<<8 ^ stream)
	return float64(h>>11) / float64(1<<53)
}

// Partitioned reports whether the directed link src→dst is blackholed at
// frame sequence seq.
func (inj *Injector) Partitioned(src, dst int, seq uint64) bool {
	lf := inj.linkFaults(src, dst)
	return lf.PartitionFrom != nil && seq >= *lf.PartitionFrom
}

// Decide returns the fault verdict for transmission attempt `attempt` of
// the frame with per-link sequence number seq on link src→dst. Identical
// arguments always return identical verdicts for a given Config.
func (inj *Injector) Decide(src, dst int, seq uint64, attempt int) Verdict {
	v := Verdict{CorruptBit: -1}
	lf := inj.linkFaults(src, dst)
	if lf.PartitionFrom != nil && seq >= *lf.PartitionFrom {
		v.Drop = true
		return v
	}
	if seq < lf.From || (lf.Until > 0 && seq >= lf.Until) {
		return v
	}
	if lf.FromElapsed > 0 || lf.UntilElapsed > 0 {
		elapsed := time.Since(inj.start)
		if elapsed < lf.FromElapsed || (lf.UntilElapsed > 0 && elapsed >= lf.UntilElapsed) {
			return v
		}
	}
	if lf.DelayRate > 0 && inj.draw(src, dst, seq, attempt, 1) < lf.DelayRate {
		v.Delay = lf.Delay
	}
	if lf.DropRate > 0 && inj.draw(src, dst, seq, attempt, 2) < lf.DropRate {
		v.Drop = true
		return v
	}
	if lf.TruncateRate > 0 && inj.draw(src, dst, seq, attempt, 3) < lf.TruncateRate {
		// 1–4 trailing bytes vanish inside the "engine".
		v.TruncateBytes = 1 + int(splitmix64(uint64(inj.cfg.Seed)^seq^0x7C)%4)
	}
	if lf.CorruptRate > 0 && inj.draw(src, dst, seq, attempt, 4) < lf.CorruptRate {
		v.CorruptBit = int(splitmix64(uint64(inj.cfg.Seed)^seq<<1^uint64(attempt)) % (1 << 20))
	}
	if lf.DupRate > 0 && inj.draw(src, dst, seq, attempt, 5) < lf.DupRate {
		v.Duplicate = true
	}
	return v
}

// RecordSend advances node id's crash counter by one send and reports
// whether the node has crashed (the counter passed its limit).
func (inj *Injector) RecordSend(id int) bool {
	if id < 0 || id >= len(inj.crashed) {
		return false
	}
	c := &inj.crashed[id]
	limit := c.limit.Load()
	if limit == 0 {
		return false
	}
	return c.sent.Add(1) >= limit
}

// Crashed reports whether node id has crashed (without advancing the
// counter).
func (inj *Injector) Crashed(id int) bool {
	if id < 0 || id >= len(inj.crashed) {
		return false
	}
	c := &inj.crashed[id]
	limit := c.limit.Load()
	return limit != 0 && c.sent.Load() >= limit
}

// Revive clears node id's crash schedule, modelling the failed process
// being restarted on the same host: the replacement never re-crashes, and
// its transport serves sends and receives again. It is the join-path dual
// of CrashAfter and is deterministic as long as the caller revives at a
// deterministic point in the run (e.g. right before re-admitting the node
// to the membership).
func (inj *Injector) Revive(id int) {
	if id < 0 || id >= len(inj.crashed) {
		return
	}
	inj.crashed[id].limit.Store(0)
}
