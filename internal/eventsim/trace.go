package eventsim

import (
	"inceptionn/internal/obs"
)

// RingTraceDelays runs the ring-exchange DAG of RingTimeDelays and emits
// the full per-phase span schema a measured run produces — compute, send,
// recv, reduce — on the simulator's virtual timeline (RecordRaw), so
// `inctrace` can aggregate, blame, and calibrate simulated iterations
// exactly like real ones.
//
// computeTime is each node's compute phase before its first send;
// nodeDelay (optional, per node) adds straggler compute on top. Recv
// spans follow the measured ring's convention — the wait between the end
// of a node's own step send and the arrival of its inbound block — which
// preserves the straggler inversion (minimum wait at the slow node) the
// critical-path attribution keys on. baseNs shifts every emitted span on
// the trace timeline, so consecutive iterations chain instead of
// overlapping at virtual t=0. Returns the exchange finish time in
// virtual seconds (relative to the iteration start, excluding baseNs).
// SwitchTraceDelays runs the in-network switch all-reduce DAG of
// SwitchTimeDelays and emits the measured-run span schema on the
// simulator's virtual timeline: compute/send/recv spans for each worker,
// and send (multicast down), recv (wait for the next chunk's uploads) and
// reduce (combine engine busy) spans for the switch, which appears in the
// trace as one logical node with id == workers (its per-port sim nodes
// are remapped onto it). A throttled combine engine therefore shows up in
// `inctrace blame` exactly like a straggler worker: the switch's recv
// waits collapse toward zero while every worker piles up wait on the
// downlink, and its reduce spans carry the gating time. Returns the
// exchange finish time in virtual seconds (relative to iteration start).
func SwitchTraceDelays(p Params, workers int, modelBytes, chunkBytes, combinePerByte, computeTime float64, nodeDelay []float64, rec *obs.Recorder, iter int, baseNs int64) float64 {
	if workers < 1 || modelBytes <= 0 {
		return 0
	}
	s := New(p, 2*workers)
	s.SetObs(rec, iter)
	s.baseNs = baseNs
	// Collapse the per-port sim nodes onto one logical switch node.
	s.spanNode = make([]int, 2*workers)
	for n := range s.spanNode {
		s.spanNode[n] = n
		if n >= workers {
			s.spanNode[n] = workers
		}
	}

	delays := make([]float64, workers)
	for node := 0; node < workers; node++ {
		delays[node] = computeTime
		if node < len(nodeDelay) {
			delays[node] += nodeDelay[node]
		}
		rec.RecordRaw(node, iter, obs.PhaseCompute, baseNs, secNs(delays[node]))
	}

	sizes := switchChunks(modelBytes, chunkBytes)
	up, down, combine := switchDAG(s, workers, sizes, combinePerByte, delays)
	times := s.Run()

	last := 0.0
	prevCombineReady := 0.0
	for k := range sizes {
		// Switch recv: wait from the end of the previous combine until the
		// last of this chunk's uploads lands (zero when the combine engine
		// is the bottleneck — the straggler-inversion signal blame keys on).
		arrived := 0.0
		for w := 0; w < workers; w++ {
			if t := times[up[k][w]]; t > arrived {
				arrived = t
			}
		}
		wait := arrived - prevCombineReady
		start := prevCombineReady
		if wait < 0 {
			wait = 0
			start = arrived
		}
		rec.RecordRaw(workers, iter, obs.PhaseRecv, baseNs+secNs(start), secNs(start+wait)-secNs(start))

		// Switch reduce: the combine token's ready time is dep-arrival plus
		// the combine delay, so the engine was busy over [ready−s, ready].
		ready, _ := s.Timing(combine[k])
		sum := sizes[k] * combinePerByte
		rec.RecordRaw(workers, iter, obs.PhaseReduce, baseNs+secNs(ready-sum), secNs(ready)-secNs(ready-sum))
		prevCombineReady = ready

		// Worker recv: wait from the end of a worker's own chunk upload
		// until the combined chunk arrives back (ring convention).
		for w := 0; w < workers; w++ {
			ownEnd := times[up[k][w]] - p.Latency
			delivery := times[down[k][w]]
			wait := delivery - ownEnd
			if wait < 0 {
				wait = 0
				ownEnd = delivery
			}
			rec.RecordRaw(w, iter, obs.PhaseRecv, baseNs+secNs(ownEnd), secNs(wait))
			if delivery > last {
				last = delivery
			}
		}
	}
	return last
}

func RingTraceDelays(p Params, workers int, blockBytes, sumDelayPerStep, computeTime float64, nodeDelay []float64, rec *obs.Recorder, iter int, baseNs int64) float64 {
	if workers < 2 {
		return 0
	}
	s := New(p, workers)
	s.SetObs(rec, iter)
	s.baseNs = baseNs

	compute := make([]float64, workers)
	for node := 0; node < workers; node++ {
		compute[node] = computeTime
		if node < len(nodeDelay) {
			compute[node] += nodeDelay[node]
		}
		rec.RecordRaw(node, iter, obs.PhaseCompute, baseNs, secNs(compute[node]))
	}

	steps := 2 * (workers - 1)
	prev := make([]FlowID, workers)
	for i := range prev {
		prev[i] = -1
	}
	// sent[step][node] is the flow node forwards in that step.
	sent := make([][]FlowID, steps)
	for step := 0; step < steps; step++ {
		sent[step] = make([]FlowID, workers)
		cur := make([]FlowID, workers)
		for node := 0; node < workers; node++ {
			right := (node + 1) % workers
			var deps []FlowID
			delay := 0.0
			if prev[node] >= 0 {
				deps = append(deps, prev[node])
				if step < workers-1 {
					delay = sumDelayPerStep
				}
			} else {
				delay = compute[node]
			}
			id := s.AddFlow(node, right, blockBytes, deps, delay)
			sent[step][node] = id
			cur[right] = id
		}
		prev = cur
	}
	times := s.Run()

	// Reconstruct the recv and reduce phases from the resolved flow
	// timings (send spans were emitted by the sim itself).
	last := 0.0
	inbound := make([]FlowID, workers) // node's inbound flow in the previous step
	for i := range inbound {
		inbound[i] = -1
	}
	for step := 0; step < steps; step++ {
		for node := 0; node < workers; node++ {
			right := (node + 1) % workers
			fid := sent[step][node]
			delivery := times[fid]
			if delivery > last {
				last = delivery
			}
			// Reduce: the summation the sender performed on its inbound
			// block before forwarding it (reduce-scatter steps only).
			if step >= 1 && step < workers-1 && sumDelayPerStep > 0 {
				rec.RecordRaw(node, iter, obs.PhaseReduce, baseNs+secNs(times[inbound[node]]), secNs(sumDelayPerStep))
			}
			// Recv at the right neighbour: wait from the end of its own
			// step send until this block arrives.
			ownEnd := times[sent[step][right]] - p.Latency
			wait := delivery - ownEnd
			if wait < 0 {
				wait = 0
				ownEnd = delivery
			}
			rec.RecordRaw(right, iter, obs.PhaseRecv, baseNs+secNs(ownEnd), secNs(wait))
		}
		for node := 0; node < workers; node++ {
			inbound[(node+1)%workers] = sent[step][node]
		}
	}
	return last
}
