package eventsim

// FallbackCost breaks down the price of a mid-run switch→ring collective
// fallback (see internal/train/switchheal.go): the stalled step deadlines
// burned confirming the failure, the one replayed ring exchange that
// re-earns the lost iteration, and the steady-state per-iteration cost on
// either side of the trip. All values are seconds of virtual time.
type FallbackCost struct {
	DetectSeconds       float64 // step deadlines expired before the monitor confirms
	ReplaySeconds       float64 // re-running the in-flight iteration's exchange on the ring
	SwitchIterSeconds   float64 // healthy armed switch exchange (incl. snapshot copy)
	DegradedIterSeconds float64 // post-fallback ring exchange (incl. snapshot copy)
	TotalPenaltySeconds float64 // one-time cost of the trip: detect + replay
}

// SwitchFallbackCost models the self-healing runner's fallback on the
// fluid-flow simulator. Detection follows the SwitchMonitor grading: a
// hard transport self-report confirms immediately, but the worst case —
// a silent stall — burns softStrikes consecutive step deadlines
// (stepTimeout seconds each) before the trip. Arming the fallback costs
// every iteration a two-deep snapshot: weights, velocity, residual and
// gradient copied at snapCopyPerByte seconds per gradient byte (pass 0
// to ignore memory traffic). The replayed iteration and every iteration
// after the trip pay the ring exchange instead of the switch one.
func SwitchFallbackCost(p Params, workers int, modelBytes, chunkBytes, combinePerByte, stepTimeout, snapCopyPerByte float64, softStrikes int) FallbackCost {
	if softStrikes < 1 {
		softStrikes = 1
	}
	sw := SwitchTime(p, workers, modelBytes, chunkBytes, combinePerByte)
	ring := RingTime(p, workers, modelBytes/float64(workers), 0)
	snap := 4 * modelBytes * snapCopyPerByte
	c := FallbackCost{
		DetectSeconds:       float64(softStrikes) * stepTimeout,
		ReplaySeconds:       ring,
		SwitchIterSeconds:   sw + snap,
		DegradedIterSeconds: ring + snap,
	}
	c.TotalPenaltySeconds = c.DetectSeconds + c.ReplaySeconds
	return c
}
