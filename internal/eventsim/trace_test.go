package eventsim

import (
	"testing"

	"inceptionn/internal/obs"
)

func TestRingTraceDelaysSchema(t *testing.T) {
	p := Params{LineRate: 1.25e9, StreamCap: 0.45 * 1.25e9, Latency: 30e-6}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(4096)
	rec := obs.NewRecorder(reg, tr)

	const workers = 4
	delays := []float64{0, 0, 5e-3, 0} // node 2 straggles 5ms per iteration
	var baseNs int64
	for iter := 0; iter < 5; iter++ {
		total := RingTraceDelays(p, workers, 1e6, 1e-4, 2e-3, delays, rec, iter, baseNs)
		if total <= 0 {
			t.Fatalf("iter %d: non-positive exchange time %g", iter, total)
		}
		baseNs += int64(total * 1e9)
	}

	spans := tr.Snapshot()
	var havePhase [obs.NumPhases]bool
	for _, s := range spans {
		havePhase[s.Phase] = true
	}
	for _, ph := range []obs.Phase{obs.PhaseCompute, obs.PhaseSend, obs.PhaseRecv, obs.PhaseReduce} {
		if !havePhase[ph] {
			t.Fatalf("sim trace missing %s spans", ph)
		}
	}

	// The virtual-time trace must feed the same critical-path attribution
	// as a measured one — and name the injected straggler.
	r := obs.AttributeCriticalPath(spans, 0)
	if node, share := r.Gating(); node != 2 || share < 0.9 {
		t.Fatalf("sim blame: gating node %d share %.2f, want node 2 ≥0.90", node, share)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"eventsim_flows", "eventsim_events", "eventsim_rate_changes"} {
		if v, ok := snap[name].(int64); !ok || v <= 0 {
			t.Fatalf("%s = %v, want > 0", name, snap[name])
		}
	}
}
