// Package eventsim is a discrete-event, fluid-flow network simulator used
// to validate the closed-form timing model in internal/netsim. Nodes hang
// off a non-blocking switch through full-duplex links; concurrent flows
// share link capacity max-min fairly, each additionally capped by a
// per-stream rate (TCP single-stream goodput). Flows can depend on other
// flows (plus a fixed compute delay), which expresses both the
// worker-aggregator phases and the ring exchange's step pipeline as flow
// DAGs.
//
// The simulation advances between rate-change events (flow arrivals and
// completions), recomputing the max-min fair allocation at each event by
// water-filling. With tens of flows per iteration this is exact and fast.
package eventsim

import (
	"fmt"
	"math"

	"inceptionn/internal/obs"
)

// Params describe the simulated cluster (compare netsim.Params; the
// per-packet stack cost is intentionally absent — this simulator validates
// the pure bandwidth/latency behaviour).
type Params struct {
	LineRate  float64 // link capacity per direction, bytes/s
	StreamCap float64 // per-flow rate ceiling, bytes/s
	Latency   float64 // propagation per node-switch-node path, seconds
}

// FlowID identifies a scheduled flow.
type FlowID int

type flow struct {
	src, dst int
	bytes    float64
	deps     []FlowID
	delay    float64

	ready     float64 // activation time (resolved during Run)
	remaining float64
	done      float64 // delivery time (transfer end + latency)
	active    bool
	finished  bool
	rate      float64
	lastRate  float64 // previous allocation, for rate-change accounting
}

// Sim is one simulation instance.
type Sim struct {
	p     Params
	nodes int
	flows []*flow

	// Observability (optional): flows emit virtual-time send spans and
	// event counters through rec, in the same schema as measured runs.
	rec      *obs.Recorder
	iter     int
	baseNs   int64 // trace-timeline shift applied to emitted spans
	spanNode []int // optional sim-node → trace-node remap for emitted spans
}

// SetObs attaches a recorder: every flow with payload emits a
// virtual-time PhaseSend span (node = flow source, the given iter) via
// RecordRaw, and the run counts flows, events, and max-min rate changes
// as eventsim_* counters. A nil recorder keeps the simulator silent.
func (s *Sim) SetObs(rec *obs.Recorder, iter int) {
	s.rec = rec
	s.iter = iter
}

// secNs converts simulator virtual seconds to span nanoseconds, rounding
// to the nearest nanosecond. Truncation toward zero would leave every
// emitted span a nanosecond short of the float timeline whenever sec*1e9
// lands below the representable integer, drifting sim spans against the
// flow done-times obs.Calibrate diffs them with.
func secNs(sec float64) int64 { return int64(math.Round(sec * 1e9)) }

// traceNode maps a sim node index to the node id recorded on spans.
func (s *Sim) traceNode(n int) int {
	if s.spanNode != nil {
		return s.spanNode[n]
	}
	return n
}

// Timing returns a flow's resolved activation and delivery times. Valid
// after Run.
func (s *Sim) Timing(id FlowID) (ready, done float64) {
	f := s.flows[id]
	return f.ready, f.done
}

// New returns a simulator over the given node count.
func New(p Params, nodes int) *Sim {
	if nodes < 1 || p.LineRate <= 0 || p.StreamCap <= 0 {
		panic(fmt.Sprintf("eventsim: invalid setup nodes=%d %+v", nodes, p))
	}
	return &Sim{p: p, nodes: nodes}
}

// AddFlow schedules a transfer of bytes from src to dst that starts delay
// seconds after every dependency has been *delivered*. It returns the
// flow's id. Zero-byte flows act as pure synchronization/delay points.
func (s *Sim) AddFlow(src, dst int, bytes float64, deps []FlowID, delay float64) FlowID {
	if src < 0 || src >= s.nodes || dst < 0 || dst >= s.nodes {
		panic(fmt.Sprintf("eventsim: flow %d->%d outside %d nodes", src, dst, s.nodes))
	}
	if bytes < 0 || delay < 0 {
		panic("eventsim: negative bytes or delay")
	}
	f := &flow{src: src, dst: dst, bytes: bytes, deps: append([]FlowID(nil), deps...), delay: delay}
	s.flows = append(s.flows, f)
	return FlowID(len(s.flows) - 1)
}

// Run executes the simulation and returns each flow's delivery time.
// It may be called once per Sim.
func (s *Sim) Run() []float64 {
	// Resolve activation times; dependencies must be earlier flow ids
	// (a DAG in insertion order).
	for i, f := range s.flows {
		ready := 0.0
		for _, d := range f.deps {
			if int(d) >= i {
				panic(fmt.Sprintf("eventsim: flow %d depends on later flow %d", i, d))
			}
		}
		f.ready = ready // finalized below once deps complete
		f.remaining = f.bytes
	}

	now := 0.0
	resolved := make([]bool, len(s.flows)) // activation time known
	started := make([]bool, len(s.flows))

	flowsC := s.rec.Counter("eventsim_flows")
	eventsC := s.rec.Counter("eventsim_events")
	ratesC := s.rec.Counter("eventsim_rate_changes")
	flowsC.Add(int64(len(s.flows)))

	resolveReady := func() {
		for i, f := range s.flows {
			if resolved[i] {
				continue
			}
			ready := 0.0
			ok := true
			for _, d := range f.deps {
				df := s.flows[d]
				if !df.finished {
					ok = false
					break
				}
				if df.done > ready {
					ready = df.done
				}
			}
			if ok {
				f.ready = ready + f.delay
				resolved[i] = true
			}
		}
	}
	resolveReady()

	for {
		// Activate flows whose time has come.
		for i, f := range s.flows {
			if resolved[i] && !started[i] && f.ready <= now+1e-15 {
				started[i] = true
				if f.remaining == 0 {
					f.finished = true
					f.done = now + s.p.Latency
					resolveReady()
				} else {
					f.active = true
				}
			}
		}

		eventsC.Add(1)
		s.allocateRates()
		for _, f := range s.flows {
			if f.active && f.rate != f.lastRate {
				ratesC.Add(1)
				f.lastRate = f.rate
			}
		}

		// Next event: earliest pending activation or earliest completion.
		next := math.Inf(1)
		for i, f := range s.flows {
			if resolved[i] && !started[i] && f.ready < next {
				next = f.ready
			}
			if f.active && f.rate > 0 {
				if t := now + f.remaining/f.rate; t < next {
					next = t
				}
			}
		}
		if math.IsInf(next, 1) {
			break // nothing running, nothing pending
		}

		// Advance and drain. The finish threshold is relative to the flow
		// size: with 10^8-byte flows, float64 subtraction leaves residues
		// far above any absolute epsilon, which would otherwise stall the
		// clock (dt underflows to zero).
		dt := next - now
		now = next
		for _, f := range s.flows {
			if f.active {
				f.remaining -= f.rate * dt
				// Second disjunct: the flow's residual drain time has
				// underflown the clock (now + remaining/rate == now, so dt
				// can never advance it) — happens when a fitted or
				// configured rate is absurdly high relative to the
				// timescale; without it the loop would spin forever.
				if f.remaining <= 1e-9*(1+f.bytes) ||
					(f.rate > 0 && now+f.remaining/f.rate == now) {
					f.remaining = 0
					f.active = false
					f.finished = true
					f.done = now + s.p.Latency
				}
			}
		}
		resolveReady()
	}

	out := make([]float64, len(s.flows))
	allDone := true
	for i, f := range s.flows {
		if !f.finished {
			allDone = false
		}
		out[i] = f.done
		if f.bytes > 0 {
			// Virtual-time send span: activation to transfer end (delivery
			// minus the propagation leg), attributed to the source node.
			// Start and end are rounded independently so the span's end
			// lands exactly on secNs(done − latency) — rounding a
			// separately-computed duration could leave it a nanosecond off
			// the flow's done-time.
			start := secNs(f.ready)
			end := secNs(f.done - s.p.Latency)
			s.rec.RecordRaw(s.traceNode(f.src), s.iter, obs.PhaseSend, s.baseNs+start, end-start)
		}
	}
	if !allDone {
		panic("eventsim: deadlocked dependency graph")
	}
	return out
}

// allocateRates computes the max-min fair allocation for active flows by
// water-filling over uplink and downlink capacities with per-flow caps.
func (s *Sim) allocateRates() {
	type link struct {
		capacity float64
		flows    []*flow
	}
	links := make(map[int]*link) // key: +node uplink, -node-1 downlink
	var active []*flow
	for _, f := range s.flows {
		if !f.active {
			continue
		}
		active = append(active, f)
		f.rate = -1 // unfrozen
		for _, key := range []int{f.src + 1, -(f.dst + 1)} {
			l := links[key]
			if l == nil {
				l = &link{capacity: s.p.LineRate}
				links[key] = l
			}
			l.flows = append(l.flows, f)
		}
	}
	unfrozen := len(active)
	for unfrozen > 0 {
		// Bottleneck share: the smallest of the per-link fair shares and
		// the stream cap.
		share := s.p.StreamCap
		for _, l := range links {
			n := 0
			for _, f := range l.flows {
				if f.rate < 0 {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if fair := l.capacity / float64(n); fair < share {
				share = fair
			}
		}
		// Freeze every flow constrained at this share: flows on saturated
		// links, or all remaining flows if the stream cap binds.
		frozeAny := false
		for _, l := range links {
			n := 0
			for _, f := range l.flows {
				if f.rate < 0 {
					n++
				}
			}
			if n == 0 {
				continue
			}
			if l.capacity/float64(n) <= share+1e-12 {
				for _, f := range l.flows {
					if f.rate < 0 {
						f.rate = share
						unfrozen--
						frozeAny = true
					}
				}
				l.capacity = 0
			}
		}
		if !frozeAny {
			// The stream cap binds for everyone left.
			for _, f := range active {
				if f.rate < 0 {
					f.rate = share
					unfrozen--
				}
			}
		}
		// Deduct frozen flows' rates from their links' remaining capacity.
		for _, l := range links {
			if l.capacity == 0 {
				continue
			}
			remaining := s.p.LineRate
			for _, f := range l.flows {
				if f.rate >= 0 {
					remaining -= f.rate
				}
			}
			if remaining < 0 {
				remaining = 0
			}
			l.capacity = remaining
		}
	}
}

// WorkerAggregatorTimeDelays is WorkerAggregatorTime with an extra
// per-worker send delay (straggler model: nodeDelay[w] seconds before each
// of worker w's transfers starts).
func WorkerAggregatorTimeDelays(p Params, workers int, gradBytes, weightBytes, sumDelay float64, nodeDelay []float64) float64 {
	s := New(p, workers+1)
	agg := workers
	up := make([]FlowID, workers)
	for w := 0; w < workers; w++ {
		d := 0.0
		if w < len(nodeDelay) {
			d = nodeDelay[w]
		}
		up[w] = s.AddFlow(w, agg, gradBytes, nil, d)
	}
	down := make([]FlowID, workers)
	for w := 0; w < workers; w++ {
		down[w] = s.AddFlow(agg, w, weightBytes, up, sumDelay)
	}
	times := s.Run()
	var last float64
	for _, id := range down {
		if times[id] > last {
			last = times[id]
		}
	}
	return last
}

// RingTimeDelays is RingTime with an extra per-node send delay: a single
// straggler stalls every one of its 2(p−1) pipeline steps, so the ring is
// far more straggler-sensitive than the aggregator exchange — the known
// trade-off of synchronous ring collectives, quantified in ablation G.
func RingTimeDelays(p Params, workers int, blockBytes, sumDelayPerStep float64, nodeDelay []float64) float64 {
	if workers < 2 {
		return 0
	}
	s := New(p, workers)
	steps := 2 * (workers - 1)
	prev := make([]FlowID, workers)
	for i := range prev {
		prev[i] = -1
	}
	var all []FlowID
	for step := 0; step < steps; step++ {
		cur := make([]FlowID, workers)
		for node := 0; node < workers; node++ {
			right := (node + 1) % workers
			var deps []FlowID
			if prev[node] >= 0 {
				deps = append(deps, prev[node])
			}
			delay := 0.0
			if step < workers-1 && prev[node] >= 0 {
				delay = sumDelayPerStep
			}
			if node < len(nodeDelay) {
				delay += nodeDelay[node]
			}
			cur[right] = s.AddFlow(node, right, blockBytes, deps, delay)
			all = append(all, cur[right])
		}
		prev = cur
	}
	times := s.Run()
	var last float64
	for _, id := range all {
		if times[id] > last {
			last = times[id]
		}
	}
	return last
}

// WorkerAggregatorTime builds and runs the WA exchange DAG: p workers send
// gradBytes to the aggregator concurrently, the aggregator spends sumDelay,
// then sends weightBytes back to every worker. Returns the time the last
// worker holds the weights.
func WorkerAggregatorTime(p Params, workers int, gradBytes, weightBytes, sumDelay float64) float64 {
	s := New(p, workers+1)
	agg := workers
	up := make([]FlowID, workers)
	for w := 0; w < workers; w++ {
		up[w] = s.AddFlow(w, agg, gradBytes, nil, 0)
	}
	var last float64
	down := make([]FlowID, workers)
	for w := 0; w < workers; w++ {
		down[w] = s.AddFlow(agg, w, weightBytes, up, sumDelay)
	}
	times := s.Run()
	for _, id := range down {
		if times[id] > last {
			last = times[id]
		}
	}
	return last
}

// switchDAG builds the in-network switch all-reduce flow DAG on s, which
// must span 2*workers nodes: workers 0..p−1 and their dedicated switch
// ports p..2p−1 (dedicated node pairs model a non-blocking switch fabric —
// aggregation happens at the port, so no link is ever shared by two
// workers' streams, unlike the worker-aggregator incast). Per chunk k:
// every worker uploads chunk k to its port (serialized per worker by a
// dependency on its previous upload), a zero-byte combine token —
// depending on all of chunk k's uploads and on the previous token —
// serializes the switch's reduction unit and carries the combine time as
// its delay, and each port multicasts the combined chunk back down once
// the token fires. nodeDelay stalls each worker's first upload.
//
// The token is a flow, so its completion charges one propagation hop per
// chunk; a combine-bound switch is thereby overstated by Latency per
// chunk (sub-percent at realistic chunk sizes, and the throttled-switch
// behaviour the blame tooling keys on is unaffected).
//
// Returns the per-chunk upload flows, combine tokens, and download flows.
func switchDAG(s *Sim, workers int, chunkSizes []float64, combinePerByte float64, nodeDelay []float64) (up, down [][]FlowID, combine []FlowID) {
	up = make([][]FlowID, len(chunkSizes))
	down = make([][]FlowID, len(chunkSizes))
	combine = make([]FlowID, len(chunkSizes))
	prevUp := make([]FlowID, workers)
	for w := range prevUp {
		prevUp[w] = -1
	}
	prevTok := FlowID(-1)
	for k, bytes := range chunkSizes {
		up[k] = make([]FlowID, workers)
		for w := 0; w < workers; w++ {
			var deps []FlowID
			delay := 0.0
			if prevUp[w] >= 0 {
				deps = append(deps, prevUp[w])
			} else if w < len(nodeDelay) {
				delay = nodeDelay[w]
			}
			up[k][w] = s.AddFlow(w, workers+w, bytes, deps, delay)
			prevUp[w] = up[k][w]
		}
		tokDeps := append([]FlowID(nil), up[k]...)
		if prevTok >= 0 {
			tokDeps = append(tokDeps, prevTok)
		}
		combine[k] = s.AddFlow(workers, workers, 0, tokDeps, bytes*combinePerByte)
		prevTok = combine[k]
		down[k] = make([]FlowID, workers)
		for w := 0; w < workers; w++ {
			down[k][w] = s.AddFlow(workers+w, w, bytes, []FlowID{combine[k]}, 0)
		}
	}
	return up, down, combine
}

// switchChunks splits modelBytes into chunkBytes-sized pieces (the
// on-switch buffer bound), the last one possibly smaller.
func switchChunks(modelBytes, chunkBytes float64) []float64 {
	if chunkBytes <= 0 || chunkBytes > modelBytes {
		chunkBytes = modelBytes
	}
	var sizes []float64
	for rem := modelBytes; rem > 0; rem -= chunkBytes {
		c := chunkBytes
		if rem < chunkBytes {
			c = rem
		}
		sizes = append(sizes, c)
	}
	return sizes
}

// SwitchTimeDelays builds and runs the in-network switch all-reduce DAG:
// p workers stream a modelBytes gradient through the switch's reduction
// unit in chunkBytes chunks, the combine of each chunk costs its bytes ×
// combinePerByte seconds (serialized across chunks), and combined chunks
// multicast back down every port. nodeDelay adds per-worker straggler
// delay before the first upload. Returns the time the last worker holds
// the fully combined gradient.
func SwitchTimeDelays(p Params, workers int, modelBytes, chunkBytes, combinePerByte float64, nodeDelay []float64) float64 {
	if workers < 1 || modelBytes <= 0 {
		return 0
	}
	s := New(p, 2*workers)
	_, down, _ := switchDAG(s, workers, switchChunks(modelBytes, chunkBytes), combinePerByte, nodeDelay)
	times := s.Run()
	// Downloads of different chunks overlap on the downlinks (down_k only
	// waits for combine_k), so a large chunk's multicast can outlive the
	// small tail chunk's — the exchange ends when the last of ALL chunks
	// lands, not the last-indexed one.
	var last float64
	for _, chunk := range down {
		for _, id := range chunk {
			if times[id] > last {
				last = times[id]
			}
		}
	}
	return last
}

// SwitchTime is SwitchTimeDelays without stragglers.
func SwitchTime(p Params, workers int, modelBytes, chunkBytes, combinePerByte float64) float64 {
	return SwitchTimeDelays(p, workers, modelBytes, chunkBytes, combinePerByte, nil)
}

// RingTime builds and runs the ring exchange DAG: 2(p−1) steps; in step s
// every node forwards one block to its right neighbour, and a node's send
// in step s+1 depends on its own receive in step s (plus sumDelay during
// the reduce-scatter phase). Returns the time the last node finishes.
func RingTime(p Params, workers int, blockBytes, sumDelayPerStep float64) float64 {
	if workers < 2 {
		return 0
	}
	s := New(p, workers)
	steps := 2 * (workers - 1)
	prev := make([]FlowID, workers) // node's receive in the previous step
	for i := range prev {
		prev[i] = -1
	}
	var all []FlowID
	for step := 0; step < steps; step++ {
		cur := make([]FlowID, workers)
		for node := 0; node < workers; node++ {
			right := (node + 1) % workers
			var deps []FlowID
			if prev[node] >= 0 {
				deps = append(deps, prev[node])
			}
			delay := 0.0
			if step < workers-1 && prev[node] >= 0 {
				delay = sumDelayPerStep
			}
			cur[right] = s.AddFlow(node, right, blockBytes, deps, delay)
			all = append(all, cur[right])
		}
		prev = cur
	}
	times := s.Run()
	var last float64
	for _, id := range all {
		if times[id] > last {
			last = times[id]
		}
	}
	return last
}
