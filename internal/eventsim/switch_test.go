package eventsim

import (
	"math"
	"testing"

	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

// TestSendSpanEndMatchesFlowDone is the secNs rounding satellite: for a
// known flow set, every emitted send span must end exactly on
// secNs(done − Latency) — truncation used to leave spans a nanosecond
// short of the float timeline whenever sec*1e9 fell below the
// representable integer.
func TestSendSpanEndMatchesFlowDone(t *testing.T) {
	p := testParams()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	rec := obs.NewRecorder(reg, tr)
	s := New(p, 4)
	s.SetObs(rec, 0)
	// Sizes chosen so transfer times are not representable exactly in ns:
	// 1e7/StreamCap = 17777.77…µs, the old truncation dropped the final ns.
	a := s.AddFlow(0, 1, 1e7, nil, 0)
	b := s.AddFlow(1, 2, 3333333, []FlowID{a}, 1.5e-6)
	c := s.AddFlow(2, 3, 7, []FlowID{b}, 0)
	times := s.Run()

	spans := tr.Snapshot()
	ids := []FlowID{a, b, c}
	if len(spans) != len(ids) {
		t.Fatalf("%d spans for %d payload flows", len(spans), len(ids))
	}
	for i, id := range ids {
		ready, done := s.Timing(id)
		if done != times[id] {
			t.Fatalf("flow %d: Timing done %g != Run result %g", id, done, times[id])
		}
		sp := spans[i]
		if sp.Start != secNs(ready) {
			t.Errorf("flow %d: span start %dns, want secNs(ready)=%dns", id, sp.Start, secNs(ready))
		}
		if end := sp.Start + sp.Dur; end != secNs(done-p.Latency) {
			t.Errorf("flow %d: span end %dns, want secNs(done-latency)=%dns (done=%.12gs)",
				id, end, secNs(done-p.Latency), done)
		}
	}
}

// TestSwitchMatchesClosedForm: the event simulation of the in-network
// switch all-reduce must agree with netsim's closed-form pipeline model
// when the per-packet cost is disabled there.
func TestSwitchMatchesClosedForm(t *testing.T) {
	ep := testParams()
	np := netsim.Default10GbE()
	np.PerPacketTime = 0
	np.SwitchMemBytes = 8 << 20
	combinePerByte := 1 / np.SwitchSumRate
	for _, spec := range []models.Spec{models.AlexNet, models.HDC} {
		for _, workers := range []int{4, 8} {
			n := float64(spec.ParamBytes)
			ev := SwitchTime(ep, workers, n, float64(np.SwitchMemBytes), combinePerByte)
			cf := np.SwitchAllReduce(workers, spec.ParamBytes, nil).Total()
			if rel := math.Abs(ev-cf) / cf; rel > 0.10 {
				t.Errorf("%s workers=%d: event %gs vs closed-form %gs (%.1f%% apart)",
					spec.Name, workers, ev, cf, 100*rel)
			}
		}
	}
}

// TestSwitchBeatsWAInEventSim: the dedicated-port reduction avoids WA's
// incast in the dynamic simulation too, increasingly so at scale.
func TestSwitchBeatsWAInEventSim(t *testing.T) {
	ep := testParams()
	n := float64(models.AlexNet.ParamBytes)
	sumRate := 8e9
	for _, workers := range []int{8, 16} {
		wa := WorkerAggregatorTime(ep, workers, n, n, float64(workers-1)*n/sumRate)
		sw := SwitchTime(ep, workers, n, 8<<20, 1/sumRate)
		if sw >= wa {
			t.Errorf("workers=%d: switch %gs >= WA %gs", workers, sw, wa)
		}
	}
}

func TestSwitchTimeDegenerate(t *testing.T) {
	ep := testParams()
	if got := SwitchTime(ep, 0, 1e6, 1e5, 1e-10); got != 0 {
		t.Errorf("workers=0: %g, want 0", got)
	}
	if got := SwitchTime(ep, 4, 0, 1e5, 1e-10); got != 0 {
		t.Errorf("bytes=0: %g, want 0", got)
	}
	// One worker still round-trips its own gradient through the switch.
	if got := SwitchTime(ep, 1, 1e6, 1e5, 1e-10); got <= 0 {
		t.Errorf("workers=1: %g, want > 0", got)
	}
}

// TestSwitchTraceBlameNamesThrottledSwitch is the tentpole observability
// acceptance: a sim trace of the switch strategy with the combine engine
// throttled below link rate must attribute the gating phase to the
// logical switch node (id == workers) — its recv waits collapse while
// every worker queues on the downlink — with the stall visible as switch
// reduce spans.
func TestSwitchTraceBlameNamesThrottledSwitch(t *testing.T) {
	p := testParams()
	reg := obs.NewRegistry()
	tr := obs.NewTracer(8192)
	rec := obs.NewRecorder(reg, tr)

	const workers = 4
	combinePerByte := 10 / p.LineRate // combine 10x slower than the link
	var baseNs int64
	for iter := 0; iter < 3; iter++ {
		total := SwitchTraceDelays(p, workers, 1e6, 1e5, combinePerByte, 2e-3, nil, rec, iter, baseNs)
		if total <= 0 {
			t.Fatalf("iter %d: non-positive exchange time %g", iter, total)
		}
		baseNs += int64(total * 1e9)
	}

	spans := tr.Snapshot()
	var switchReduce, switchSend, workerRecv int
	for _, s := range spans {
		switch {
		case s.Node == workers && s.Phase == obs.PhaseReduce:
			switchReduce++
		case s.Node == workers && s.Phase == obs.PhaseSend:
			switchSend++
		case s.Node < workers && s.Phase == obs.PhaseRecv:
			workerRecv++
		}
	}
	if switchReduce == 0 || switchSend == 0 || workerRecv == 0 {
		t.Fatalf("span schema incomplete: %d switch reduce, %d switch send, %d worker recv",
			switchReduce, switchSend, workerRecv)
	}

	r := obs.AttributeCriticalPath(spans, 0)
	if node, share := r.Gating(); node != workers || share < 0.9 {
		t.Fatalf("blame: gating node %d share %.2f, want switch node %d >= 0.90", node, share, workers)
	}
}

// TestSwitchTraceMatchesSwitchTime: the trace-emitting variant must
// reproduce the plain DAG's finish time exactly.
func TestSwitchTraceMatchesSwitchTime(t *testing.T) {
	p := testParams()
	want := SwitchTime(p, 4, 2.5e6, 1e6, 2e-10)
	got := SwitchTraceDelays(p, 4, 2.5e6, 1e6, 2e-10, 0, nil, nil, 0, 0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("trace variant %g, plain %g", got, want)
	}
}
