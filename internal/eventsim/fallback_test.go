package eventsim

import (
	"math"
	"testing"
)

func TestSwitchFallbackCost(t *testing.T) {
	p := testParams()
	const (
		modelBytes  = 4 * 151306.0
		stepTimeout = 0.25
		snapPerByte = 1.0 / 16e9 // ~16 GB/s memcpy
	)
	c := SwitchFallbackCost(p, 4, modelBytes, 0, 0, stepTimeout, snapPerByte, 1)

	// A single soft strike confirms after exactly one step deadline, and
	// the one-time penalty is that deadline plus one replayed ring
	// exchange.
	if c.DetectSeconds != stepTimeout {
		t.Errorf("detect %g, want one step deadline %g", c.DetectSeconds, stepTimeout)
	}
	if want := c.DetectSeconds + c.ReplaySeconds; math.Abs(c.TotalPenaltySeconds-want) > 1e-12 {
		t.Errorf("total penalty %g, want detect+replay %g", c.TotalPenaltySeconds, want)
	}
	if c.ReplaySeconds != RingTime(p, 4, modelBytes/4, 0) {
		t.Errorf("replay %g, want one ring exchange", c.ReplaySeconds)
	}

	// The degraded band is the ring collective plus snapshot bookkeeping:
	// it must cost more than a bare ring iteration but stay within the
	// bench gate's 1.15× envelope for any realistic memcpy rate.
	ring := RingTime(p, 4, modelBytes/4, 0)
	if c.DegradedIterSeconds <= ring {
		t.Errorf("degraded %g should exceed bare ring %g (snapshot overhead)", c.DegradedIterSeconds, ring)
	}
	if ratio := c.DegradedIterSeconds / ring; ratio > 1.15 {
		t.Errorf("degraded/ring ratio %.3f exceeds 1.15", ratio)
	}

	// More soft strikes burn proportionally more deadlines.
	c3 := SwitchFallbackCost(p, 4, modelBytes, 0, 0, stepTimeout, snapPerByte, 3)
	if c3.DetectSeconds != 3*stepTimeout {
		t.Errorf("3-strike detect %g, want %g", c3.DetectSeconds, 3*stepTimeout)
	}
	if c3.TotalPenaltySeconds <= c.TotalPenaltySeconds {
		t.Error("extra strikes should raise the one-time penalty")
	}

	// Zero memcpy rate collapses the armed overhead.
	c0 := SwitchFallbackCost(p, 4, modelBytes, 0, 0, stepTimeout, 0, 0)
	if c0.DegradedIterSeconds != ring {
		t.Errorf("free snapshots: degraded %g, want bare ring %g", c0.DegradedIterSeconds, ring)
	}
	if c0.DetectSeconds != stepTimeout {
		t.Errorf("softStrikes<1 should clamp to 1, got detect %g", c0.DetectSeconds)
	}
}
