package eventsim

import (
	"math"
	"testing"

	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
)

func testParams() Params {
	return Params{LineRate: 1.25e9, StreamCap: 0.45 * 1.25e9, Latency: 30e-6}
}

func TestSingleFlow(t *testing.T) {
	p := testParams()
	s := New(p, 2)
	id := s.AddFlow(0, 1, 1e9, nil, 0)
	times := s.Run()
	// One stream: capped at StreamCap.
	want := 1e9/p.StreamCap + p.Latency
	if math.Abs(times[id]-want) > 1e-9*want {
		t.Fatalf("single flow time %g, want %g", times[id], want)
	}
}

func TestIncastSharesLineRate(t *testing.T) {
	p := testParams()
	s := New(p, 5)
	// Four flows into node 4: each gets LineRate/4 < StreamCap.
	var ids []FlowID
	for w := 0; w < 4; w++ {
		ids = append(ids, s.AddFlow(w, 4, 1e9, nil, 0))
	}
	times := s.Run()
	want := 1e9/(p.LineRate/4) + p.Latency
	for _, id := range ids {
		if math.Abs(times[id]-want) > 1e-6*want {
			t.Fatalf("incast flow time %g, want %g", times[id], want)
		}
	}
}

func TestTwoFlowsHitStreamCap(t *testing.T) {
	p := testParams()
	s := New(p, 3)
	// Two flows into node 2: fair share LineRate/2 = 0.625 GB/s exceeds the
	// 0.5625 GB/s stream cap, so the cap binds.
	a := s.AddFlow(0, 2, 1e9, nil, 0)
	b := s.AddFlow(1, 2, 1e9, nil, 0)
	times := s.Run()
	want := 1e9/p.StreamCap + p.Latency
	for _, id := range []FlowID{a, b} {
		if math.Abs(times[id]-want) > 1e-6*want {
			t.Fatalf("flow time %g, want %g (stream cap)", times[id], want)
		}
	}
}

func TestDependencyChainAndDelay(t *testing.T) {
	p := testParams()
	s := New(p, 2)
	first := s.AddFlow(0, 1, 1e8, nil, 0)
	second := s.AddFlow(1, 0, 1e8, []FlowID{first}, 0.5)
	times := s.Run()
	tFirst := 1e8/p.StreamCap + p.Latency
	want := tFirst + 0.5 + 1e8/p.StreamCap + p.Latency
	if math.Abs(times[second]-want) > 1e-6*want {
		t.Fatalf("chained flow time %g, want %g", times[second], want)
	}
}

func TestZeroByteFlowIsSyncPoint(t *testing.T) {
	p := testParams()
	s := New(p, 2)
	a := s.AddFlow(0, 1, 1e8, nil, 0)
	sync := s.AddFlow(0, 1, 0, []FlowID{a}, 0.25)
	times := s.Run()
	if times[sync] < times[a]+0.25 {
		t.Fatalf("sync fired at %g before %g+0.25", times[sync], times[a])
	}
}

func TestRateRecomputedOnCompletion(t *testing.T) {
	p := testParams()
	p.StreamCap = p.LineRate // disable the cap to isolate sharing
	s := New(p, 3)
	// Short and long flow share node 2's downlink; when the short one
	// finishes, the long one speeds up to full line rate.
	long := s.AddFlow(0, 2, 2e9, nil, 0)
	short := s.AddFlow(1, 2, 0.5e9, nil, 0)
	times := s.Run()
	// Phase 1: both at 0.625 GB/s until short is done at t=0.8 (long has
	// moved 0.5e9). Phase 2: long alone at 1.25 GB/s for 1.5e9 -> 1.2s.
	wantShort := 0.8 + p.Latency
	wantLong := 0.8 + 1.2 + p.Latency
	if math.Abs(times[short]-wantShort) > 1e-6 {
		t.Fatalf("short = %g, want %g", times[short], wantShort)
	}
	if math.Abs(times[long]-wantLong) > 1e-6 {
		t.Fatalf("long = %g, want %g", times[long], wantLong)
	}
}

// TestWAMatchesClosedForm: the event simulation of the worker-aggregator
// exchange must agree with netsim's closed form when the per-packet cost
// is disabled there.
func TestWAMatchesClosedForm(t *testing.T) {
	ep := testParams()
	np := netsim.Default10GbE()
	np.PerPacketTime = 0
	for _, spec := range []models.Spec{models.AlexNet, models.HDC} {
		n := float64(spec.ParamBytes)
		sum := 3 * n / np.SumRate
		ev := WorkerAggregatorTime(ep, 4, n, n, sum)
		cf := np.WorkerAggregator(4, spec.ParamBytes,
			netsim.Plain(spec.ParamBytes), netsim.Plain(spec.ParamBytes)).Total()
		// The closed form adds packet headers (+~4%) and fixed latency;
		// agreement within 10% validates the structure.
		if rel := math.Abs(ev-cf) / cf; rel > 0.10 {
			t.Errorf("%s: event %gs vs closed-form %gs (%.1f%% apart)",
				spec.Name, ev, cf, 100*rel)
		}
	}
}

// TestRingMatchesClosedForm: same validation for the ring exchange.
func TestRingMatchesClosedForm(t *testing.T) {
	ep := testParams()
	np := netsim.Default10GbE()
	np.PerPacketTime = 0
	for _, spec := range []models.Spec{models.AlexNet, models.ResNet50} {
		workers := 4
		block := float64(spec.ParamBytes) / float64(workers)
		sumPerStep := block / np.SumRate
		ev := RingTime(ep, workers, block, sumPerStep)
		cf := np.Ring(workers, spec.ParamBytes, netsim.Plain(spec.ParamBytes/int64(workers))).Total()
		if rel := math.Abs(ev-cf) / cf; rel > 0.12 {
			t.Errorf("%s: event %gs vs closed-form %gs (%.1f%% apart)",
				spec.Name, ev, cf, 100*rel)
		}
	}
}

// TestRingBeatsWAInEventSim: the headline comparison holds in the
// fully dynamic simulation too.
func TestRingBeatsWAInEventSim(t *testing.T) {
	ep := testParams()
	for _, workers := range []int{2, 4, 8} {
		n := float64(models.ResNet50.ParamBytes)
		wa := WorkerAggregatorTime(ep, workers, n, n, 3*n/8e9)
		ringT := RingTime(ep, workers, n/float64(workers), n/float64(workers)/8e9)
		if ringT >= wa {
			t.Errorf("workers=%d: ring %g >= WA %g", workers, ringT, wa)
		}
	}
}

// TestScalabilityShapeInEventSim reproduces the Fig. 15 shape dynamically.
func TestScalabilityShapeInEventSim(t *testing.T) {
	ep := testParams()
	n := float64(models.AlexNet.ParamBytes)
	wa4 := WorkerAggregatorTime(ep, 4, n, n, 0)
	wa8 := WorkerAggregatorTime(ep, 8, n, n, 0)
	ring4 := RingTime(ep, 4, n/4, 0)
	ring8 := RingTime(ep, 8, n/8, 0)
	if wa8 < 1.6*wa4 {
		t.Errorf("WA 4→8: %g → %g, expected ~2x", wa4, wa8)
	}
	if ring8 > 1.2*ring4 {
		t.Errorf("ring 4→8: %g → %g, expected near-flat", ring4, ring8)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	p := testParams()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad node", func() { New(p, 2).AddFlow(0, 5, 1, nil, 0) })
	mustPanic("negative bytes", func() { New(p, 2).AddFlow(0, 1, -1, nil, 0) })
	mustPanic("forward dep", func() {
		s := New(p, 2)
		s.AddFlow(0, 1, 1, []FlowID{1}, 0)
		s.Run()
	})
	mustPanic("zero nodes", func() { New(p, 0) })
}

// TestStragglerSensitivity quantifies the trade-off of ablation G: one
// slow worker (delay d before every send). The incast's work-conserving
// link absorbs most of the delay in the WA exchange (the other streams use
// the idle capacity, penalty well under d), while the ring's critical
// chain crosses the straggler once per phase (penalty ≈ 2d) — the
// synchronous ring is several times more straggler-sensitive.
func TestStragglerSensitivity(t *testing.T) {
	p := testParams()
	workers := 4
	n := 50e6
	const d = 0.1
	delays := make([]float64, workers)
	delays[2] = d

	waBase := WorkerAggregatorTimeDelays(p, workers, n, n, 0, nil)
	waSlow := WorkerAggregatorTimeDelays(p, workers, n, n, 0, delays)
	waPenalty := waSlow - waBase
	if waPenalty <= 0 || waPenalty > d {
		t.Errorf("WA straggler penalty %g, want in (0, %g): incast absorbs the delay", waPenalty, d)
	}

	ringBase := RingTimeDelays(p, workers, n/float64(workers), 0, nil)
	ringSlow := RingTimeDelays(p, workers, n/float64(workers), 0, delays)
	ringPenalty := ringSlow - ringBase
	if ringPenalty < 1.8*d || ringPenalty > 2.2*d {
		t.Errorf("ring straggler penalty %g, want ~%g (one crossing per phase)", ringPenalty, 2*d)
	}
	if ringPenalty <= 2*waPenalty {
		t.Errorf("ring (%g) should be much more sensitive than WA (%g)", ringPenalty, waPenalty)
	}
}

// TestDelayVariantsMatchBaseWithoutDelays: the *Delays builders reduce to
// the plain builders when every delay is zero.
func TestDelayVariantsMatchBaseWithoutDelays(t *testing.T) {
	p := testParams()
	n := 10e6
	a := WorkerAggregatorTime(p, 4, n, n, 0.01)
	b := WorkerAggregatorTimeDelays(p, 4, n, n, 0.01, nil)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("WA: %g vs %g", a, b)
	}
	c := RingTime(p, 4, n/4, 0.001)
	d := RingTimeDelays(p, 4, n/4, 0.001, nil)
	if math.Abs(c-d) > 1e-12 {
		t.Errorf("ring: %g vs %g", c, d)
	}
}
