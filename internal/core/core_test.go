package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"inceptionn/internal/data"
	"inceptionn/internal/models"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Workers = 0
	if _, err := New(bad); err == nil {
		t.Error("expected error for zero workers")
	}
	bad = DefaultConfig()
	bad.ErrorBoundExp = 99
	if _, err := New(bad); err == nil {
		t.Error("expected error for invalid bound")
	}
}

func TestCompressDecompressRoundtrip(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	grad := make([]float32, 1000)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64() * 0.01)
	}
	dataBytes, bits := s.Compress(grad)
	out, err := s.Decompress(dataBytes, bits, len(grad))
	if err != nil {
		t.Fatal(err)
	}
	for i := range grad {
		if math.Abs(float64(out[i])-float64(grad[i])) > s.Bound().MaxError() {
			t.Fatalf("value %d exceeds bound", i)
		}
	}
	if r := s.Ratio(grad); r < 2 {
		t.Errorf("ratio = %g on tight gradients", r)
	}
}

func TestEnginesAndCodecAgree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseNICEngines = true
	a, _ := New(cfg)
	cfg.UseNICEngines = false
	b, _ := New(cfg)
	rng := rand.New(rand.NewSource(2))
	grad := make([]float32, 512)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64() * 0.05)
	}
	outA, bytesA := a.Processor().Process(grad, 0x28)
	outB, bytesB := b.Processor().Process(grad, 0x28)
	if bytesA != bytesB {
		t.Fatalf("wire bytes differ: %d vs %d", bytesA, bytesB)
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("value %d differs between engine and codec paths", i)
		}
	}
}

func TestTrainOptionsWiring(t *testing.T) {
	s, _ := New(DefaultConfig())
	o := s.TrainOptions(models.HDC, 0)
	if o.BatchPerNode != models.HDC.Hyper.BatchPerNode {
		t.Errorf("batch = %d, want Table I default %d", o.BatchPerNode, models.HDC.Hyper.BatchPerNode)
	}
	if o.Algo != train.Ring || !o.Compress || o.Processor == nil {
		t.Error("options not wired to the INCEPTIONN configuration")
	}
	o = s.TrainOptions(models.HDC, 8)
	if o.BatchPerNode != 8 {
		t.Errorf("batch override = %d", o.BatchPerNode)
	}
}

func TestEndToEndTrainingThroughFacade(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	o := s.TrainOptions(models.HDC, 16)
	o.Schedule.Base = 0.02
	o.Seed = 7
	trainDS := data.NewDigits(2000, 3)
	testDS := data.NewDigits(400, 90)
	res, err := train.Run(models.NewHDCSmall, trainDS, testDS, 120, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.85 {
		t.Fatalf("facade training accuracy = %.3f", res.FinalAcc)
	}
	if res.WireBytes >= res.RawBytes {
		t.Error("compression had no effect on traffic")
	}
}

func TestEstimate(t *testing.T) {
	s, _ := New(DefaultConfig())
	est := s.Estimate(models.AlexNet)
	if est.Total() <= 0 || est.Exchange <= 0 {
		t.Fatalf("estimate %+v", est)
	}
	// The full system estimate must beat the WA baseline estimate.
	wa := trainsim.Default().IterTime(trainsim.WA, models.AlexNet)
	if est.Total() >= wa.Total() {
		t.Errorf("INC+C estimate %.3f not faster than WA %.3f", est.Total(), wa.Total())
	}
}

func TestSummary(t *testing.T) {
	s, _ := New(DefaultConfig())
	sum := s.Summary()
	for _, want := range []string{"4 workers", "2^-10", "NIC engine", "compression on"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}
