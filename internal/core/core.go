// Package core is the top-level facade of the INCEPTIONN reproduction: it
// bundles the three co-designed pieces of the paper — the lossy gradient
// codec (internal/fpcodec), its in-NIC accelerator model (internal/nic),
// and the gradient-centric aggregator-free training algorithm
// (internal/ring, driven by internal/train) — behind one configuration
// object, the way a downstream user would consume the system.
package core

import (
	"fmt"

	"inceptionn/internal/bitio"
	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

// Config selects the system variant.
type Config struct {
	// ErrorBoundExp is the codec's absolute error bound exponent E (bound
	// 2^-E). The paper evaluates 6, 8 and 10.
	ErrorBoundExp int
	// Workers is the worker-group size (the paper's building block is 4).
	Workers int
	// UseNICEngines routes traffic through the bit-exact hardware engine
	// model instead of the reference software codec. Both paths produce
	// identical bytes; the engine path also accounts hardware cycles.
	UseNICEngines bool
	// Compress enables in-network gradient compression (the "+C" in the
	// paper's system names).
	Compress bool
}

// DefaultConfig returns the paper's primary configuration: four workers,
// NIC engines on, error bound 2^-10, compression enabled.
func DefaultConfig() Config {
	return Config{ErrorBoundExp: 10, Workers: 4, UseNICEngines: true, Compress: true}
}

// System is a configured INCEPTIONN instance.
type System struct {
	cfg   Config
	bound fpcodec.Bound
	proc  comm.WireProcessor
}

// New validates cfg and constructs a System.
func New(cfg Config) (*System, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: %d workers", cfg.Workers)
	}
	bound, err := fpcodec.NewBound(cfg.ErrorBoundExp)
	if err != nil {
		return nil, err
	}
	var proc comm.WireProcessor
	if cfg.UseNICEngines {
		proc = nic.Processor{Bound: bound}
	} else {
		proc = comm.CodecProcessor{Bound: bound}
	}
	return &System{cfg: cfg, bound: bound, proc: proc}, nil
}

// Bound returns the codec error bound.
func (s *System) Bound() fpcodec.Bound { return s.bound }

// Processor returns the NIC datapath model for use with comm.NewFabric.
func (s *System) Processor() comm.WireProcessor { return s.proc }

// Compress encodes a gradient vector with the system's codec, returning
// the packed bytes and the exact bit length.
func (s *System) Compress(grad []float32) ([]byte, int) {
	w := bitio.NewWriter(len(grad))
	fpcodec.CompressStream(w, grad, s.bound)
	return w.Bytes(), w.Len()
}

// Decompress decodes count values from a stream produced by Compress.
func (s *System) Decompress(data []byte, bits, count int) ([]float32, error) {
	out := make([]float32, count)
	err := fpcodec.DecompressStream(bitio.NewReader(data, bits), out, s.bound)
	return out, err
}

// Ratio returns the compression ratio the codec achieves on grad.
func (s *System) Ratio(grad []float32) float64 {
	return fpcodec.Ratio(grad, s.bound)
}

// TrainOptions returns training options wired to this system: the ring
// algorithm, the configured NIC datapath, and the model's Table I
// hyperparameters.
func (s *System) TrainOptions(spec models.Spec, batchPerNode int) train.Options {
	if batchPerNode <= 0 {
		batchPerNode = spec.Hyper.BatchPerNode
	}
	return train.Options{
		Workers:      s.cfg.Workers,
		Algo:         train.Ring,
		BatchPerNode: batchPerNode,
		Schedule: opt.StepSchedule{
			Base:   spec.Hyper.LR,
			Factor: spec.Hyper.LRFactor,
			Every:  spec.Hyper.LREvery,
		},
		Momentum:    spec.Hyper.Momentum,
		WeightDecay: spec.Hyper.WeightDecay,
		Processor:   s.proc,
		Compress:    s.cfg.Compress,
	}
}

// Estimate returns the simulated per-iteration time of this configuration
// on the full-size model spec, using the Table-II-calibrated simulator.
func (s *System) Estimate(spec models.Spec) trainsim.Breakdown {
	c := trainsim.Default()
	c.Workers = s.cfg.Workers
	c.BoundExp = s.cfg.ErrorBoundExp
	sys := trainsim.INC
	if s.cfg.Compress {
		sys = trainsim.INCC
	}
	return c.IterTime(sys, spec)
}

// Summary describes the system configuration.
func (s *System) Summary() string {
	engine := "reference codec"
	if s.cfg.UseNICEngines {
		engine = "NIC engine model"
	}
	comp := "off"
	if s.cfg.Compress {
		comp = "on"
	}
	return fmt.Sprintf("INCEPTIONN: %d workers, bound %v, %s, compression %s",
		s.cfg.Workers, s.bound, engine, comp)
}
