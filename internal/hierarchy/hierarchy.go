// Package hierarchy implements the multi-level organizations of the
// paper's Fig. 1: worker groups are the building block, and the
// gradient-centric ring exchange can replace either just the leaf groups
// of a conventional worker-aggregator tree (Fig. 1b) or every level of
// the hierarchy (Fig. 1c).
//
// Topology model: N workers are divided into groups of GroupSize. Within
// a group, gradients are exchanged with Algorithm 1 (ring). Across
// groups, one representative per group ("leader", the paper's per-group
// contact point) exchanges the group's aggregated gradient:
//
//   - ModeAggregatorTree (Fig. 1b): leaders send the group sums to a
//     designated global aggregator (node id = N) and receive updated
//     weights back — gradients only flow on the up leg, so only that leg
//     is compressible, and the root remains a hot spot.
//   - ModeRingOfLeaders (Fig. 1c): leaders run a second-level ring
//     exchange among themselves — gradients flow on every leg of every
//     level, so in-NIC compression applies everywhere and no node is
//     special.
//
// After the inter-group exchange, leaders hold the global gradient sum
// and broadcast it down their group ring positionally (a final intra-group
// Bcast), after which every worker applies the same update.
package hierarchy

import (
	"context"
	"fmt"
	"sync"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

// Mode selects the inter-group organization.
type Mode int

// Modes of Fig. 1(b) and Fig. 1(c).
const (
	// ModeAggregatorTree keeps a designated global aggregator above the
	// ring groups (Fig. 1b).
	ModeAggregatorTree Mode = iota
	// ModeRingOfLeaders uses rings at every level (Fig. 1c).
	ModeRingOfLeaders
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeAggregatorTree {
		return "aggregator-tree"
	}
	return "ring-of-leaders"
}

// Topology describes a two-level cluster.
type Topology struct {
	Workers   int // total workers; must be a multiple of GroupSize
	GroupSize int
	Mode      Mode
}

// Validate checks the topology.
func (t Topology) Validate() error {
	if t.GroupSize < 2 {
		return fmt.Errorf("hierarchy: group size %d", t.GroupSize)
	}
	if t.Workers < t.GroupSize || t.Workers%t.GroupSize != 0 {
		return fmt.Errorf("hierarchy: %d workers not divisible into groups of %d",
			t.Workers, t.GroupSize)
	}
	return nil
}

// Groups returns the number of groups.
func (t Topology) Groups() int { return t.Workers / t.GroupSize }

// FabricSize returns the node count the fabric must provide: the workers
// plus, in aggregator-tree mode, the global aggregator.
func (t Topology) FabricSize() int {
	if t.Mode == ModeAggregatorTree {
		return t.Workers + 1
	}
	return t.Workers
}

// AggregatorID returns the global aggregator's node id (tree mode only).
func (t Topology) AggregatorID() int { return t.Workers }

// group returns worker id's group index and its rank within the group.
func (t Topology) group(id int) (g, rank int) {
	return id / t.GroupSize, id % t.GroupSize
}

// leader reports whether id is its group's leader (rank 0).
func (t Topology) leader(id int) bool {
	_, rank := t.group(id)
	return rank == 0
}

// Tags for the leader↔member and leader↔aggregator legs, plus the tag
// offsets that keep the two ring levels' tag spaces disjoint (the links
// are disjoint too, but disjoint tags make misrouted frames loud).
const (
	tagLeaderDown = 9500
	tagGradUp     = 9600
	tagResultDown = 9601

	groupTagOffset  = 8000
	leaderTagOffset = 16000
)

// levelOptions returns the ring options for one hierarchy level: the
// caller's step deadline and chunking with the level's private tag space.
func levelOptions(opt ring.Options, tagOffset int) ring.Options {
	opt.TagOffset += tagOffset
	return opt
}

// AllReduce performs the hierarchical global gradient sum on worker id:
// intra-group ring, inter-group exchange per the topology mode, and an
// intra-group broadcast of the global result. On return every worker's
// grad holds the global sum. Leaders' inter-group gradient legs honour
// tos; the tree mode's weight-like down leg does not (it carries the
// already-summed gradient from the aggregator, which the paper's WA
// system would send as weights — we keep it uncompressed for parity).
//
// All t.Workers workers must call AllReduce concurrently; in tree mode
// RunAggregator must run on node t.AggregatorID().
//
// AllReduce is the legacy panic-on-failure wrapper around AllReduceCtx.
func AllReduce(t Topology, e *comm.Endpoint, grad []float32, tos uint8, finalize func([]float32)) {
	if err := AllReduceCtx(context.Background(), t, comm.AsCtxPeer(e), grad, tos, finalize, ring.Options{}); err != nil {
		panic(err)
	}
}

// AllReduceCtx is the fault-tolerant form of AllReduce: transport
// anomalies and context cancellation surface as errors instead of
// panicking the worker goroutine. Both ring levels delegate to
// ring.AllReduceGroupCtx, so opt's StepTimeout bounds every individual
// hop (a wedged peer surfaces as a timeout naming the link, without the
// caller having to cancel) and opt's ChunkSize pipelines each block.
// The leader↔member and leader↔aggregator legs honour the deadline too.
func AllReduceCtx(ctx context.Context, t Topology, e comm.CtxPeer, grad []float32, tos uint8, finalize func([]float32), opt ring.Options) error {
	if err := t.Validate(); err != nil {
		return err
	}
	id := e.ID()
	g, _ := t.group(id)
	groupIDs := make([]int, t.GroupSize)
	for i := range groupIDs {
		groupIDs[i] = g*t.GroupSize + i
	}

	// Level 1: intra-group ring (gradients, compressible).
	if err := ring.AllReduceGroupCtx(ctx, e, groupIDs, grad, tos, finalize, levelOptions(opt, groupTagOffset)); err != nil {
		return fmt.Errorf("hierarchy: group ring: %w", err)
	}

	// Level 2: inter-group exchange by the leaders.
	if t.leader(id) {
		switch t.Mode {
		case ModeRingOfLeaders:
			leaders := make([]int, t.Groups())
			for i := range leaders {
				leaders[i] = i * t.GroupSize
			}
			if err := ring.AllReduceGroupCtx(ctx, e, leaders, grad, tos, finalize, levelOptions(opt, leaderTagOffset)); err != nil {
				return fmt.Errorf("hierarchy: leader ring: %w", err)
			}
		case ModeAggregatorTree:
			if err := sendStep(ctx, e, opt, t.AggregatorID(), grad, tos, tagGradUp); err != nil {
				return fmt.Errorf("hierarchy: leader %d gradient up: %w", id, err)
			}
			rb, err := recvStep(ctx, e, opt, t.AggregatorID(), tagResultDown)
			if err != nil {
				return fmt.Errorf("hierarchy: leader %d result down: %w", id, err)
			}
			copy(grad, rb)
		}
		// Level 3: broadcast the global result inside the group.
		for _, member := range groupIDs[1:] {
			if err := sendStep(ctx, e, opt, member, grad, 0, tagLeaderDown); err != nil {
				return fmt.Errorf("hierarchy: leader %d broadcast to %d: %w", id, member, err)
			}
		}
	} else {
		rb, err := recvStep(ctx, e, opt, groupIDs[0], tagLeaderDown)
		if err != nil {
			return fmt.Errorf("hierarchy: member %d awaiting leader %d: %w", id, groupIDs[0], err)
		}
		copy(grad, rb)
	}
	return nil
}

// sendStep is one deadline-bounded point-to-point send.
func sendStep(ctx context.Context, e comm.CtxPeer, opt ring.Options, dst int, vec []float32, tos uint8, tag int) error {
	sctx, cancel := opt.StepContext(ctx)
	defer cancel()
	return e.SendCtx(sctx, dst, vec, tos, tag)
}

// recvStep is one deadline-bounded point-to-point receive.
func recvStep(ctx context.Context, e comm.CtxPeer, opt ring.Options, src int, tag int) ([]float32, error) {
	sctx, cancel := opt.StepContext(ctx)
	defer cancel()
	return e.RecvCtx(sctx, src, tag)
}

// RunAggregator is the global aggregator loop body for one iteration of
// ModeAggregatorTree: it sums the group leaders' vectors and sends the
// result back. It is the legacy panic-on-failure wrapper around
// RunAggregatorCtx.
func RunAggregator(t Topology, e *comm.Endpoint, gradLen int) {
	if err := RunAggregatorCtx(context.Background(), t, comm.AsCtxPeer(e), gradLen, ring.Options{}); err != nil {
		panic(err)
	}
}

// RunAggregatorCtx is the error-returning form of RunAggregator. Each
// per-leader gather and result leg is bounded by opt.StepTimeout, so one
// wedged leader fails the step with an error naming it.
func RunAggregatorCtx(ctx context.Context, t Topology, e comm.CtxPeer, gradLen int, opt ring.Options) error {
	sum := make([]float32, gradLen)
	leaders := make([]int, t.Groups())
	for i := range leaders {
		leaders[i] = i * t.GroupSize
	}
	for _, l := range leaders {
		g, err := recvStep(ctx, e, opt, l, tagGradUp)
		if err != nil {
			return fmt.Errorf("hierarchy: aggregator gather from %d: %w", l, err)
		}
		if len(g) != gradLen {
			return fmt.Errorf("hierarchy: aggregator got %d floats from %d, want %d", len(g), l, gradLen)
		}
		for i, v := range g {
			sum[i] += v
		}
	}
	for _, l := range leaders {
		if err := sendStep(ctx, e, opt, l, sum, 0, tagResultDown); err != nil {
			return fmt.Errorf("hierarchy: aggregator result to %d: %w", l, err)
		}
	}
	return nil
}

// RunAllReduce is a convenience harness: it spins up the full topology on
// an in-process fabric, runs one hierarchical AllReduce with each worker's
// input vector, and returns the per-worker results.
func RunAllReduce(t Topology, proc comm.WireProcessor, inputs [][]float32, tos uint8, finalize func([]float32)) ([][]float32, *comm.Fabric, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	if len(inputs) != t.Workers {
		return nil, nil, fmt.Errorf("hierarchy: %d inputs for %d workers", len(inputs), t.Workers)
	}
	f := comm.NewFabric(t.FabricSize(), proc)
	out := make([][]float32, t.Workers)
	var wg sync.WaitGroup
	if t.Mode == ModeAggregatorTree {
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunAggregator(t, f.Endpoint(t.AggregatorID()), len(inputs[0]))
		}()
	}
	for id := 0; id < t.Workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := append([]float32(nil), inputs[id]...)
			AllReduce(t, f.Endpoint(id), g, tos, finalize)
			out[id] = g
		}(id)
	}
	wg.Wait()
	return out, f, nil
}
