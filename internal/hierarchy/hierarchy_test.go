package hierarchy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
)

func TestTopologyValidate(t *testing.T) {
	good := Topology{Workers: 8, GroupSize: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Topology{
		{Workers: 7, GroupSize: 4},
		{Workers: 4, GroupSize: 1},
		{Workers: 2, GroupSize: 4},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", bad)
		}
	}
	if good.Groups() != 2 {
		t.Errorf("Groups = %d", good.Groups())
	}
	if good.FabricSize() != 9 { // tree mode by default
		t.Errorf("FabricSize = %d", good.FabricSize())
	}
	ring := good
	ring.Mode = ModeRingOfLeaders
	if ring.FabricSize() != 8 {
		t.Errorf("ring FabricSize = %d", ring.FabricSize())
	}
}

func sumsMatch(t *testing.T, out [][]float32, inputs [][]float32, tol float64) {
	t.Helper()
	want := make([]float64, len(inputs[0]))
	for _, in := range inputs {
		for j, v := range in {
			want[j] += float64(v)
		}
	}
	for node := range out {
		for j := range want {
			if math.Abs(float64(out[node][j])-want[j]) > tol {
				t.Fatalf("node %d elem %d: got %g want %g", node, j, out[node][j], want[j])
			}
		}
	}
}

func makeInputs(workers, length int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]float32, workers)
	for i := range inputs {
		inputs[i] = make([]float32, length)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.Intn(100) - 50)
		}
	}
	return inputs
}

func TestBothModesComputeGlobalSum(t *testing.T) {
	for _, mode := range []Mode{ModeAggregatorTree, ModeRingOfLeaders} {
		for _, workers := range []int{4, 8, 12, 16} {
			top := Topology{Workers: workers, GroupSize: 4, Mode: mode}
			inputs := makeInputs(workers, 257, int64(workers))
			out, _, err := RunAllReduce(top, nil, inputs, 0, nil)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", mode, workers, err)
			}
			sumsMatch(t, out, inputs, 0) // integer-valued: exact
		}
	}
}

func TestGroupSizeVariants(t *testing.T) {
	for _, gs := range []int{2, 3, 4, 6} {
		top := Topology{Workers: gs * 3, GroupSize: gs, Mode: ModeRingOfLeaders}
		inputs := makeInputs(top.Workers, 100, int64(gs))
		out, _, err := RunAllReduce(top, nil, inputs, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumsMatch(t, out, inputs, 0)
	}
}

// TestFig1cCompressesEverywhere: in ring-of-leaders mode with compression,
// every traffic-carrying link moves fewer wire bytes than raw bytes.
func TestFig1cCompressesEverywhere(t *testing.T) {
	top := Topology{Workers: 8, GroupSize: 4, Mode: ModeRingOfLeaders}
	inputs := make([][]float32, 8)
	for i := range inputs {
		inputs[i] = make([]float32, 4096)
		for j := range inputs[i] {
			inputs[i][j] = 1e-5
		}
	}
	bound := fpcodec.MustBound(10)
	finalize := func(b []float32) {
		out, _ := (comm.CodecProcessor{Bound: bound}).Process(b, comm.ToSCompress)
		copy(b, out)
	}
	out, f, err := RunAllReduce(top, comm.CodecProcessor{Bound: bound}, inputs, comm.ToSCompress, finalize)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	// Gradient legs dominate: totals must show heavy compression. The only
	// uncompressed legs are the final intra-group result broadcasts.
	if f.TotalWireBytes() > f.TotalRawBytes()/2 {
		t.Errorf("wire %d vs raw %d: compression ineffective", f.TotalWireBytes(), f.TotalRawBytes())
	}
}

// TestFig1bAggregatorIsHotspot: in tree mode the aggregator's links carry
// group-count × gradient traffic while ring links stay balanced.
func TestFig1bAggregatorIsHotspot(t *testing.T) {
	top := Topology{Workers: 8, GroupSize: 4, Mode: ModeAggregatorTree}
	inputs := makeInputs(8, 1000, 5)
	_, f, err := RunAllReduce(top, nil, inputs, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	agg := top.AggregatorID()
	var aggIn int64
	for _, leader := range []int{0, 4} {
		aggIn += f.Stats(leader, agg).RawBytes.Load()
	}
	if aggIn != 2*4*1000 {
		t.Errorf("aggregator received %d raw bytes, want %d", aggIn, 2*4*1000)
	}
	// Non-leaders never talk to the aggregator.
	for _, w := range []int{1, 2, 3, 5, 6, 7} {
		if f.Stats(w, agg).Messages.Load() != 0 {
			t.Errorf("worker %d sent to the aggregator", w)
		}
	}
}

// TestCompressedReplicasIdentical: with the finalize hook, all workers end
// with bit-identical vectors even under lossy compression, in both modes.
func TestCompressedReplicasIdentical(t *testing.T) {
	bound := fpcodec.MustBound(10)
	proc := comm.CodecProcessor{Bound: bound}
	finalize := func(b []float32) {
		out, _ := proc.Process(b, comm.ToSCompress)
		copy(b, out)
	}
	rng := rand.New(rand.NewSource(9))
	for _, mode := range []Mode{ModeAggregatorTree, ModeRingOfLeaders} {
		top := Topology{Workers: 8, GroupSize: 4, Mode: mode}
		inputs := make([][]float32, 8)
		for i := range inputs {
			inputs[i] = make([]float32, 500)
			for j := range inputs[i] {
				inputs[i][j] = float32(rng.NormFloat64() * 0.01)
			}
		}
		out, _, err := RunAllReduce(top, proc, inputs, comm.ToSCompress, finalize)
		if err != nil {
			t.Fatal(err)
		}
		for node := 1; node < len(out); node++ {
			for j := range out[0] {
				if out[node][j] != out[0][j] {
					t.Fatalf("%v: node %d diverges at %d", mode, node, j)
				}
			}
		}
	}
}

func TestQuickHierarchicalSum(t *testing.T) {
	f := func(seed int64, groupsRaw, gsRaw, lenRaw uint8) bool {
		groups := int(groupsRaw%3) + 2 // 2..4 groups
		gs := int(gsRaw%3) + 2         // 2..4 per group
		length := int(lenRaw)%150 + 1
		mode := ModeRingOfLeaders
		if seed%2 == 0 {
			mode = ModeAggregatorTree
		}
		top := Topology{Workers: groups * gs, GroupSize: gs, Mode: mode}
		inputs := makeInputs(top.Workers, length, seed)
		out, _, err := RunAllReduce(top, nil, inputs, 0, nil)
		if err != nil {
			return false
		}
		want := make([]float64, length)
		for _, in := range inputs {
			for j, v := range in {
				want[j] += float64(v)
			}
		}
		for node := range out {
			for j := range want {
				if float64(out[node][j]) != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllReduceValidation(t *testing.T) {
	top := Topology{Workers: 8, GroupSize: 4}
	if _, _, err := RunAllReduce(top, nil, make([][]float32, 3), 0, nil); err == nil {
		t.Error("expected error for wrong input count")
	}
	bad := Topology{Workers: 7, GroupSize: 4}
	if _, _, err := RunAllReduce(bad, nil, make([][]float32, 7), 0, nil); err == nil {
		t.Error("expected error for invalid topology")
	}
}
