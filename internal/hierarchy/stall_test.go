package hierarchy

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/ring"
)

// TestAllReduceCtxTimeoutOnStalledWorker injects a stall into the
// hierarchical exchange: worker 3 never joins its group ring. With a
// StepTimeout its group peer must surface a deadline error instead of
// wedging the whole hierarchy.
func TestAllReduceCtxTimeoutOnStalledWorker(t *testing.T) {
	topo := Topology{Workers: 4, GroupSize: 2, Mode: ModeRingOfLeaders}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	f := comm.NewFabric(topo.FabricSize(), nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	opt := ring.Options{StepTimeout: 50 * time.Millisecond}
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for id := 0; id < 3; id++ { // worker 3 stalls: it never starts
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g := []float32{float32(id), 1}
			errs[id] = AllReduceCtx(ctx, topo, comm.AsCtxPeer(f.Endpoint(id)), g, 0, nil, opt)
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hierarchy hung on the stalled worker despite StepTimeout")
	}
	// Worker 2 shares a group ring with the stalled worker 3: it must be
	// the one reporting the step deadline.
	if errs[2] == nil || !errors.Is(errs[2], context.DeadlineExceeded) {
		t.Fatalf("worker 2: err = %v, want a step deadline", errs[2])
	}
}
