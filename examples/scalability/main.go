// Scalability: sweep the cluster size and compare the gradient-exchange
// time of the worker-aggregator baseline against the INCEPTIONN ring, with
// both the calibrated network simulator and the paper's α-β-γ analytic
// model (the Fig. 15 experiment, extended to larger clusters).
package main

import (
	"fmt"

	"inceptionn/internal/costmodel"
	"inceptionn/internal/models"
	"inceptionn/internal/trainsim"
)

func main() {
	spec := models.ResNet50
	analytic := costmodel.Default10GbE()

	fmt.Printf("gradient exchange time for %s (%d MB of gradients)\n\n",
		spec.Name, spec.ParamBytes/(1<<20))
	fmt.Printf("%6s | %12s %12s | %12s %12s | %8s\n",
		"nodes", "sim WA", "sim INC", "analytic WA", "analytic INC", "speedup")
	for _, nodes := range []int{2, 4, 6, 8, 12, 16, 24, 32} {
		cfg := trainsim.Default()
		cfg.Workers = nodes
		wa := cfg.ExchangeTime(trainsim.WA, spec)
		inc := cfg.ExchangeTime(trainsim.INC, spec)
		fmt.Printf("%6d | %11.3fs %11.3fs | %11.3fs %11.3fs | %7.2fx\n",
			nodes, wa, inc,
			analytic.WorkerAggregator(nodes, spec.ParamBytes),
			analytic.Ring(nodes, spec.ParamBytes),
			wa/inc)
	}
	fmt.Printf("\nring asymptote (p->inf bandwidth terms): %.3fs\n",
		analytic.RingAsymptote(spec.ParamBytes))
	fmt.Println("WA grows linearly with cluster size; the ring saturates - the paper's Fig. 15.")
}
