// Distributed HDC training: the paper's handwritten-digit workload trained
// end to end on a simulated 4-worker cluster, comparing the worker-
// aggregator baseline against the INCEPTIONN ring algorithm with and
// without in-NIC gradient compression. Every byte really moves through the
// fabric and the NIC engine model; only the network link timing is
// simulated.
package main

import (
	"fmt"
	"log"

	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

func main() {
	trainDS := data.NewDigits(4000, 11)
	testDS := data.NewDigits(600, 12)

	base := train.Options{
		Workers:      4,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         1,
		EvalSamples:  600,
	}
	const iters = 250

	configs := []struct {
		name string
		mod  func(o train.Options) train.Options
	}{
		{"worker-aggregator (WA)", func(o train.Options) train.Options {
			o.Algo = train.WorkerAggregator
			return o
		}},
		{"INCEPTIONN ring (INC)", func(o train.Options) train.Options {
			o.Algo = train.Ring
			return o
		}},
		{"INCEPTIONN ring + NIC compression (INC+C)", func(o train.Options) train.Options {
			o.Algo = train.Ring
			o.Processor = nic.Processor{Bound: fpcodec.MustBound(10)}
			o.Compress = true
			return o
		}},
	}

	fmt.Printf("training %s on synthetic digits: 4 workers x batch 16, %d iterations\n\n",
		"HDC (5x fully connected, width 128)", iters)
	for _, c := range configs {
		res, err := train.Run(models.NewHDCSmall, trainDS, testDS, iters, c.mod(base))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-44s accuracy %5.1f%%  traffic %6.1f MB raw -> %6.1f MB wire\n",
			c.name, 100*res.FinalAcc,
			float64(res.RawBytes)/(1<<20), float64(res.WireBytes)/(1<<20))
	}
	fmt.Println("\nThe ring exchanges gradients on both legs, so compression applies to")
	fmt.Println("all traffic; the WA baseline could only compress the gradient leg.")
}
