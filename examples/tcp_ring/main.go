// TCP ring: Algorithm 1 running over genuine loopback TCP sockets — the
// closest this repository gets to the paper's real cluster. Compressed
// bytes (not models of them) cross the sockets when compression is on.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/ring"
	"inceptionn/internal/tcpfabric"
)

func main() {
	const workers = 4
	const elems = 1 << 20 // 4 MB gradient vector
	bound := fpcodec.MustBound(10)

	rng := rand.New(rand.NewSource(1))
	inputs := make([][]float32, workers)
	for i := range inputs {
		inputs[i] = make([]float32, elems)
		for j := range inputs[i] {
			inputs[i][j] = float32(rng.NormFloat64() * 0.002)
		}
	}

	run := func(compress bool) (time.Duration, int64) {
		cluster, err := tcpfabric.NewCluster(workers, compress, bound)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		tos := uint8(0)
		var finalize func([]float32)
		if compress {
			tos = comm.ToSCompress
			proc := comm.CodecProcessor{Bound: bound}
			finalize = func(b []float32) {
				out, _ := proc.Process(b, comm.ToSCompress)
				copy(b, out)
			}
		}
		start := time.Now()
		var wg sync.WaitGroup
		for id := 0; id < workers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				g := append([]float32(nil), inputs[id]...)
				ring.AllReduce(cluster.Node(id), g, tos, finalize)
			}(id)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var sent int64
		for id := 0; id < workers; id++ {
			sent += cluster.Node(id).SentBytes()
		}
		return elapsed, sent
	}

	fmt.Printf("ring allreduce of %d MB across %d workers over loopback TCP\n\n",
		4*elems>>20, workers)
	tRaw, bRaw := run(false)
	fmt.Printf("  lossless:    %8.1f ms, %6.1f MB on the sockets\n",
		float64(tRaw.Microseconds())/1000, float64(bRaw)/(1<<20))
	tC, bC := run(true)
	fmt.Printf("  compressed:  %8.1f ms, %6.1f MB on the sockets (%.1fx less)\n",
		float64(tC.Microseconds())/1000, float64(bC)/(1<<20), float64(bRaw)/float64(bC))
}
