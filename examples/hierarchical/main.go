// Hierarchical organizations: train the same workload on 8 workers under
// the three cluster organizations of the paper's Fig. 1 — the conventional
// worker-aggregator baseline (1a), ring groups under a global aggregator
// (1b), and rings at every level (1c) — with in-NIC compression where each
// organization permits it.
package main

import (
	"fmt"
	"log"

	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

func main() {
	trainDS := data.NewDigits(4000, 21)
	testDS := data.NewDigits(600, 22)
	base := train.Options{
		Workers:      8,
		BatchPerNode: 8,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         5,
		EvalSamples:  600,
		Processor:    nic.Processor{Bound: fpcodec.MustBound(10)},
		Compress:     true,
	}
	const iters = 200

	configs := []struct {
		name string
		mod  func(train.Options) train.Options
	}{
		{"Fig. 1a: flat worker-aggregator", func(o train.Options) train.Options {
			o.Algo = train.WorkerAggregator
			return o
		}},
		{"Fig. 1b: ring groups under an aggregator", func(o train.Options) train.Options {
			o.Algo = train.HierarchicalTree
			o.GroupSize = 4
			return o
		}},
		{"Fig. 1c: rings at every level", func(o train.Options) train.Options {
			o.Algo = train.HierarchicalRing
			o.GroupSize = 4
			return o
		}},
	}

	fmt.Printf("HDC on 8 workers (2 groups of 4), %d iterations, NIC compression 2^-10\n\n", iters)
	for _, c := range configs {
		res, err := train.Run(models.NewHDCSmall, trainDS, testDS, iters, c.mod(base))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-44s accuracy %5.1f%%  wire %7.1f MB (raw %7.1f MB, %.1fx saved)\n",
			c.name, 100*res.FinalAcc,
			float64(res.WireBytes)/(1<<20), float64(res.RawBytes)/(1<<20),
			float64(res.RawBytes)/float64(res.WireBytes))
	}
	fmt.Println("\nEvery leg of Fig. 1c carries gradients, so compression applies everywhere;")
	fmt.Println("Fig. 1a can only compress the worker->aggregator leg.")
}
