// Quickstart: configure an INCEPTIONN system, compress a gradient vector
// with the paper's lossy codec, and estimate the full-size training
// speedup with the calibrated simulator.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"inceptionn/internal/core"
	"inceptionn/internal/models"
	"inceptionn/internal/trainsim"
)

func main() {
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Summary())

	// A gradient-shaped vector: tight around zero, rare large values.
	rng := rand.New(rand.NewSource(1))
	grad := make([]float32, 100000)
	for i := range grad {
		if rng.Intn(10) == 0 {
			grad[i] = float32(rng.NormFloat64() * 0.1)
		} else {
			grad[i] = float32(rng.NormFloat64() * 0.002)
		}
	}

	data, bits := sys.Compress(grad)
	fmt.Printf("compressed %d floats: %d -> %d bytes (ratio %.1fx)\n",
		len(grad), 4*len(grad), len(data), sys.Ratio(grad))

	restored, err := sys.Decompress(data, bits, len(grad))
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	for i := range grad {
		e := float64(restored[i] - grad[i])
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max reconstruction error: %.2e (guarantee %.2e)\n", maxErr, sys.Bound().MaxError())

	// Full-size estimates from the Table-II-calibrated simulator.
	fmt.Println("\nper-iteration estimates on the paper's testbed scale:")
	cfg := trainsim.Default()
	for _, spec := range models.Evaluated() {
		wa := cfg.IterTime(trainsim.WA, spec)
		inc := sys.Estimate(spec)
		fmt.Printf("  %-10s WA %7.4fs  ->  INC+C %7.4fs  (%.1fx speedup)\n",
			spec.Name, wa.Total(), inc.Total(), wa.Total()/inc.Total())
	}
}
