// NIC pipeline: drive TCP/IP packets through the bit-exact model of the
// paper's FPGA NIC datapath (Fig. 8): packetize a gradient vector, tag it
// with ToS 0x28, compress it on the egress engine, decompress on a peer
// NIC's ingress engine, and account the engine cycles — alongside untagged
// traffic that bypasses the engines untouched.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"inceptionn/internal/comm"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/nic"
)

func main() {
	bound := fpcodec.MustBound(10)
	sender := nic.New(bound)
	receiver := nic.New(bound)

	rng := rand.New(rand.NewSource(3))
	grad := make([]float32, 50000)
	for i := range grad {
		grad[i] = float32(rng.NormFloat64() * 0.003)
	}

	// Tagged path: the ToS comparator routes payloads through the engines.
	tagged := nic.PacketizeFloats(grad, comm.ToSCompress)
	wire := sender.Egress(tagged)
	delivered, err := receiver.Ingress(wire)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := nic.DepacketizeFloats(delivered)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gradient payload:   %d floats = %d bytes in %d packets\n",
		len(grad), 4*len(grad), len(tagged))
	fmt.Printf("on the wire:        %d bytes in %d packets (%.1fx smaller)\n",
		nic.TotalWire(wire), len(wire),
		float64(nic.TotalWire(tagged))/float64(nic.TotalWire(wire)))
	var maxErr float64
	for i := range grad {
		e := float64(restored[i] - grad[i])
		if e < 0 {
			e = -e
		}
		if e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max error:          %.2e (bound %v = %.2e)\n", maxErr, bound, bound.MaxError())
	fmt.Printf("compression engine: %d cycles = %.1f us at %d MHz\n",
		sender.CE.Cycles(), 1e6*nic.EngineSeconds(sender.CE.Cycles()), nic.ClockHz/1_000_000)
	fmt.Printf("decompress engine:  %d cycles = %.1f us\n",
		receiver.DE.Cycles(), 1e6*nic.EngineSeconds(receiver.DE.Cycles()))

	// Untagged path: regular traffic must bypass the engines bit-exactly.
	plain := nic.PacketizeFloats(grad[:1000], 0)
	bypass := sender.Egress(plain)
	through, err := receiver.Ingress(bypass)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := nic.DepacketizeFloats(through)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range exact {
		if exact[i] != grad[i] {
			same = false
			break
		}
	}
	fmt.Printf("\nuntagged traffic:   %d packets bypassed the engines, payload exact: %v\n",
		len(plain), same)
}
