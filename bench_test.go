// Package repro's root benchmarks regenerate every table and figure of the
// INCEPTIONN paper's evaluation (one benchmark per artifact; see DESIGN.md
// §4 for the index) plus the codec microbenchmarks and the DESIGN.md §5
// ablations. Run with:
//
//	go test -bench=. -benchmem
//
// The figure/table benchmarks print their report once (on the first
// iteration) and then measure the cost of regenerating the underlying
// data, so `go test -bench` output doubles as the reproduction artifact.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"
	"unsafe"

	"inceptionn/internal/bitio"
	"inceptionn/internal/comm"
	"inceptionn/internal/compress/dgc"
	"inceptionn/internal/data"
	"inceptionn/internal/eventsim"
	"inceptionn/internal/experiments"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/hierarchy"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/nic"
	"inceptionn/internal/nn"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/opt"
	"inceptionn/internal/ring"
	"inceptionn/internal/tcpfabric"
	"inceptionn/internal/tensor"
	"inceptionn/internal/train"
	"inceptionn/internal/trainsim"
)

// printOnce guards the one-time report printing per benchmark name.
var printOnce sync.Map

// runExperiment executes a registered experiment, printing its report the
// first time and writing to io.Discard afterwards.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %s not registered", name)
	}
	opts := experiments.DefaultOptions()
	var w io.Writer = io.Discard
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		w = os.Stdout
	}
	if err := e.Run(w, opts); err != nil {
		b.Fatalf("%s: %v", name, err)
	}
}

// ---- One benchmark per paper table and figure ----

func BenchmarkFig3ModelSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig3")
	}
}

func BenchmarkFig4Truncation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig4")
	}
}

func BenchmarkFig5GradientDist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig5")
	}
}

func BenchmarkFig7SoftwareCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig7")
	}
}

func BenchmarkTable1Hyperparameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "table1")
	}
}

func BenchmarkTable2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "table2")
	}
}

func BenchmarkFig12TrainingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig12")
	}
}

func BenchmarkFig13Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig13")
	}
}

func BenchmarkFig14CompressionRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig14")
	}
}

func BenchmarkTable3Bitwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "table3")
	}
}

func BenchmarkFig15Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "fig15")
	}
}

// ---- Ablations (DESIGN.md §5) ----

func BenchmarkAblationSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment(b, "ablation")
	}
}

// BenchmarkAblationBurstWidth measures software-model throughput of the
// engine at different lane counts (the hardware trade-off of Fig. 9).
func BenchmarkAblationBurstWidth(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(64 * 1024)
	for _, lanes := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("lanes%d", lanes), func(b *testing.B) {
			// The codec group size is fixed by the format; varying lanes is
			// modelled by scaling cycles per burst. Report model Gb/s.
			cycles := int64((len(payload) + lanes - 1) / lanes)
			gbps := float64(lanes) * 32 * nic.ClockHz / 1e9
			b.ReportMetric(gbps, "modelGb/s")
			b.ReportMetric(float64(cycles), "cycles")
			w := bitio.NewWriter(4 * len(payload))
			b.SetBytes(int64(4 * len(payload)))
			for i := 0; i < b.N; i++ {
				w.Reset()
				fpcodec.CompressStream(w, payload, bound)
			}
		})
	}
}

// BenchmarkAblationErrorBound sweeps the codec bound and reports the ratio.
func BenchmarkAblationErrorBound(b *testing.B) {
	payload := gradientVector(64 * 1024)
	for _, e := range []int{4, 6, 8, 10, 12, 14} {
		bound := fpcodec.MustBound(e)
		b.Run(fmt.Sprintf("E%d", e), func(b *testing.B) {
			b.ReportMetric(fpcodec.Ratio(payload, bound), "ratio")
			w := bitio.NewWriter(4 * len(payload))
			b.SetBytes(int64(4 * len(payload)))
			for i := 0; i < b.N; i++ {
				w.Reset()
				fpcodec.CompressStream(w, payload, bound)
			}
		})
	}
}

// BenchmarkAblationCompressionLegs compares simulated exchange time when
// compression applies to one leg (WA) vs both legs (ring).
func BenchmarkAblationCompressionLegs(b *testing.B) {
	cfg := trainsim.Default()
	spec := models.AlexNet
	cases := []struct {
		name string
		sys  trainsim.System
	}{
		{"oneLegWA", trainsim.WAC},
		{"bothLegsRing", trainsim.INCC},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = cfg.ExchangeTime(c.sys, spec)
			}
			b.ReportMetric(t, "simSeconds")
		})
	}
}

// BenchmarkAblationOffload compares the real CPU cost of the software
// codec path against the modelled NIC engine time for one AlexNet-block
// exchange payload.
func BenchmarkAblationOffload(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(1 << 20) // 4 MB
	b.Run("softwareCPU", func(b *testing.B) {
		w := bitio.NewWriter(4 * len(payload))
		b.SetBytes(int64(4 * len(payload)))
		for i := 0; i < b.N; i++ {
			w.Reset()
			fpcodec.CompressStream(w, payload, bound)
		}
	})
	b.Run("nicEngineModel", func(b *testing.B) {
		cycles := nic.CompressionCycles(len(payload))
		b.ReportMetric(1e6*nic.EngineSeconds(cycles), "engineMicros")
		ce := nic.NewCompressionEngine(bound)
		b.SetBytes(int64(4 * len(payload)))
		for i := 0; i < b.N; i++ {
			ce.CompressPayload(payload)
		}
	})
}

// ---- Core microbenchmarks ----

func gradientVector(n int) []float32 {
	rng := rand.New(rand.NewSource(1))
	out := make([]float32, n)
	for i := range out {
		if rng.Intn(10) == 0 {
			out[i] = float32(rng.NormFloat64() * 0.1)
		} else {
			out[i] = float32(rng.NormFloat64() * 0.002)
		}
	}
	return out
}

func BenchmarkCodecCompress(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(256 * 1024)
	w := bitio.NewWriter(4 * len(payload))
	b.SetBytes(int64(4 * len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		fpcodec.CompressStream(w, payload, bound)
	}
}

func BenchmarkCodecDecompress(b *testing.B) {
	bound := fpcodec.MustBound(10)
	payload := gradientVector(256 * 1024)
	w := bitio.NewWriter(4 * len(payload))
	fpcodec.CompressStream(w, payload, bound)
	dst := make([]float32, len(payload))
	b.SetBytes(int64(4 * len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fpcodec.DecompressStream(bitio.NewReader(w.Bytes(), w.Len()), dst, bound); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce measures the in-process ring exchange end to end
// (4 workers, 1 MB gradients), with and without NIC compression.
func BenchmarkRingAllReduce(b *testing.B) {
	for _, compressed := range []bool{false, true} {
		name := "lossless"
		var proc comm.WireProcessor
		tos := uint8(0)
		if compressed {
			name = "nicCompressed"
			proc = nic.Processor{Bound: fpcodec.MustBound(10)}
			tos = comm.ToSCompress
		}
		b.Run(name, func(b *testing.B) {
			const workers = 4
			grad := gradientVector(256 * 1024)
			b.SetBytes(int64(4 * len(grad)))
			for i := 0; i < b.N; i++ {
				f := comm.NewFabric(workers, proc)
				var wg sync.WaitGroup
				for id := 0; id < workers; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						g := append([]float32(nil), grad...)
						ring.AllReduce(f.Endpoint(id), g, tos, nil)
					}(id)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkNetsimExchange measures the simulator itself (it is called in
// tight sweep loops by the figure generators).
func BenchmarkNetsimExchange(b *testing.B) {
	p := netsim.Default10GbE()
	n := models.AlexNet.ParamBytes
	for i := 0; i < b.N; i++ {
		p.WorkerAggregator(4, n, netsim.Plain(n), netsim.Plain(n))
		p.Ring(4, n, netsim.NICCompressed(n/4, 10))
	}
}

// ---- Extension benchmarks (hierarchy, TCP transport, event sim) ----

// BenchmarkHierarchicalAllReduce measures the Fig. 1b/1c exchanges on the
// in-process fabric: 8 workers in two groups of four, 256 KB gradients.
func BenchmarkHierarchicalAllReduce(b *testing.B) {
	for _, mode := range []hierarchy.Mode{hierarchy.ModeAggregatorTree, hierarchy.ModeRingOfLeaders} {
		b.Run(mode.String(), func(b *testing.B) {
			top := hierarchy.Topology{Workers: 8, GroupSize: 4, Mode: mode}
			inputs := make([][]float32, 8)
			for i := range inputs {
				inputs[i] = gradientVector(64 * 1024)
			}
			b.SetBytes(int64(8 * 4 * 64 * 1024))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := hierarchy.RunAllReduce(top, nil, inputs, 0, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTCPRingAllReduce measures Algorithm 1 over loopback TCP.
func BenchmarkTCPRingAllReduce(b *testing.B) {
	for _, compressed := range []bool{false, true} {
		name := "lossless"
		if compressed {
			name = "compressed"
		}
		b.Run(name, func(b *testing.B) {
			bound := fpcodec.MustBound(10)
			grad := gradientVector(64 * 1024)
			b.SetBytes(int64(4 * len(grad)))
			for i := 0; i < b.N; i++ {
				cluster, err := tcpfabric.NewCluster(4, compressed, bound)
				if err != nil {
					b.Fatal(err)
				}
				tos := uint8(0)
				if compressed {
					tos = comm.ToSCompress
				}
				var wg sync.WaitGroup
				for id := 0; id < 4; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						g := append([]float32(nil), grad...)
						ring.AllReduce(cluster.Node(id), g, tos, nil)
					}(id)
				}
				wg.Wait()
				cluster.Close()
			}
		})
	}
}

// BenchmarkEventSim measures the discrete-event simulator on the Fig. 15
// workload (it backs the validation tests).
func BenchmarkEventSim(b *testing.B) {
	p := eventsim.Params{LineRate: 1.25e9, StreamCap: 0.5625e9, Latency: 30e-6}
	n := float64(models.AlexNet.ParamBytes)
	for i := 0; i < b.N; i++ {
		eventsim.WorkerAggregatorTime(p, 8, n, n, 0.01)
		eventsim.RingTime(p, 8, n/8, 0.001)
	}
}

// BenchmarkDGCSparsify measures the Deep-Gradient-Compression baseline.
func BenchmarkDGCSparsify(b *testing.B) {
	s := dgc.MustNew(256*1024, 0.001)
	grad := gradientVector(256 * 1024)
	b.SetBytes(int64(4 * len(grad)))
	for i := 0; i < b.N; i++ {
		s.Compress(grad)
	}
}

// ---- Hot-kernel benchmarks (parallel worker pool) ----
//
// These four back the `make bench` speedup report: each is run once with
// GOMAXPROCS=1 and once with the default, and cmd/benchjson computes the
// multi-core speedup from the two result sets.

// BenchmarkMatMul measures the parallel row-sharded matrix multiply on a
// convolution-shaped problem (256×576 · 576×1024).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m, k, n := 256, 576, 1024
	a := tensor.New(m, k)
	a.FillRandn(rng, 1)
	bb := tensor.New(k, n)
	bb.FillRandn(rng, 1)
	dst := tensor.New(m, n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, a, bb)
	}
}

// BenchmarkConvForwardBackward measures the batch-parallel Conv2D layer
// (batch 16, 16→32 channels, 16×16 images).
func BenchmarkConvForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := nn.NewConv2D("bench", 16, 32, 3, 1, 1, rng)
	x := tensor.New(16, 16, 16, 16)
	x.FillRandn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := c.Forward(x, true)
		c.Backward(y)
	}
}

// BenchmarkRingTrainingE2E measures short end-to-end ring training runs on
// the in-process fabric, with and without the pipelined chunked exchange
// and the lossy codec. Every layer exercised here — conv/matmul kernels,
// the stream codec, and the ring steps — rides the shared worker pool.
func BenchmarkRingTrainingE2E(b *testing.B) {
	trainDS := data.NewDigits(1024, 7)
	testDS := data.NewDigits(128, 8)
	cases := []struct {
		name     string
		compress bool
		chunk    int
	}{
		{"lossless", false, 0},
		{"losslessChunked", false, 4096},
		{"compressedChunked", true, 4096},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			o := train.Options{
				Workers:      4,
				Algo:         train.Ring,
				BatchPerNode: 16,
				Schedule:     opt.StepSchedule{Base: 0.02},
				Momentum:     0.9,
				Seed:         42,
				EvalSamples:  64,
				ChunkSize:    c.chunk,
			}
			if c.compress {
				o.Processor = comm.CodecProcessor{Bound: fpcodec.MustBound(10)}
				o.Compress = true
			}
			for i := 0; i < b.N; i++ {
				if _, err := train.Run(models.NewHDCSmall, trainDS, testDS, 5, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead quantifies the observability tax behind
// BENCH_4.json: the same short end-to-end ring training run with the
// recorder detached (nil — every instrumentation site is a nil-safe
// no-op) and attached (live registry + span tracer). The PR's acceptance
// bound is <2% overhead recorder-on vs recorder-off.
func BenchmarkObsOverhead(b *testing.B) {
	trainDS := data.NewDigits(1024, 7)
	testDS := data.NewDigits(128, 8)
	base := func() train.Options {
		return train.Options{
			Workers:      4,
			Algo:         train.Ring,
			BatchPerNode: 16,
			Schedule:     opt.StepSchedule{Base: 0.02},
			Momentum:     0.9,
			Seed:         42,
			EvalSamples:  64,
			ChunkSize:    4096,
		}
	}
	b.Run("recorderOff", func(b *testing.B) {
		o := base()
		for i := 0; i < b.N; i++ {
			if _, err := train.Run(models.NewHDCSmall, trainDS, testDS, 5, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorderOn", func(b *testing.B) {
		o := base()
		o.Obs = obs.NewRecorder(obs.NewRegistry(), obs.NewTracer(1<<16))
		for i := 0; i < b.N; i++ {
			if _, err := train.Run(models.NewHDCSmall, trainDS, testDS, 5, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHealthOverhead quantifies the health-engine tax behind
// BENCH_9.json: the same end-to-end ring training run with the
// recorder attached in both variants, plus a live streaming health
// engine (detectors + flight recorder + background poller) in the
// second. The PR's acceptance bound is <2% overhead healthOn vs
// healthOff. 25 iterations per op: long enough that the 4-goroutine
// lockstep's scheduling jitter averages out under the 2% gate.
func BenchmarkHealthOverhead(b *testing.B) {
	trainDS := data.NewDigits(1024, 7)
	testDS := data.NewDigits(128, 8)
	base := func() train.Options {
		return train.Options{
			Workers:      4,
			Algo:         train.Ring,
			BatchPerNode: 16,
			Schedule:     opt.StepSchedule{Base: 0.02},
			Momentum:     0.9,
			Seed:         42,
			EvalSamples:  64,
			ChunkSize:    4096,
			Obs:          obs.NewRecorder(obs.NewRegistry(), obs.NewTracer(1<<16)),
		}
	}
	b.Run("healthOff", func(b *testing.B) {
		o := base()
		for i := 0; i < b.N; i++ {
			if _, err := train.Run(models.NewHDCSmall, trainDS, testDS, 25, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("healthOn", func(b *testing.B) {
		o := base()
		// A fresh engine per run so every run's iterations are analyzed
		// in full (the engine skips already-analyzed iteration indices),
		// and Close's tail drain is part of the measured cost.
		for i := 0; i < b.N; i++ {
			e := health.New(o.Obs, health.Options{})
			e.Start(100 * time.Millisecond)
			o.Health = e
			_, err := train.Run(models.NewHDCSmall, trainDS, testDS, 25, o)
			e.Close()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCollectorMerge measures the cross-node trace merge behind
// BENCH_5.json: eight per-node span sets with distinct trace-meta epochs
// aligned, node-forced, time-sorted, and rebased onto one timeline.
func BenchmarkCollectorMerge(b *testing.B) {
	const nodes = 8
	const spansPerNode = 4096
	sources := make([][]obs.Span, nodes)
	for n := range sources {
		spans := make([]obs.Span, spansPerNode)
		for i := range spans {
			spans[i] = obs.Span{
				Node:  n,
				Iter:  i / int(obs.NumPhases),
				Phase: obs.Phase(i % int(obs.NumPhases)),
				Start: int64(i) * 1000,
				Dur:   900,
			}
		}
		sources[n] = spans
	}
	var span obs.Span
	b.SetBytes(int64(nodes * spansPerNode * int(unsafe.Sizeof(span))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := obs.NewCollector()
		for n, spans := range sources {
			c.AddSpans(fmt.Sprintf("node%d", n), n, int64(1_000_000+n*137), spans)
		}
		m, err := c.Merge()
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Spans) != nodes*spansPerNode {
			b.Fatalf("merged %d spans, want %d", len(m.Spans), nodes*spansPerNode)
		}
	}
}

// BenchmarkCheckpointWrite measures the durable elastic-checkpoint write
// path behind BENCH_3.json: encoding a full run snapshot (weights,
// optimizer state, per-member cursors and residuals) with its trailing
// CRC32-C and persisting it atomically (temp file, fsync, rename).
func BenchmarkCheckpointWrite(b *testing.B) {
	ck := benchCheckpoint()
	dir := b.TempDir()
	bytes := int64(4 * (len(ck.Weights) + len(ck.Velocity)))
	for _, r := range ck.Residuals {
		bytes += int64(4 * len(r))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ck.WriteFile(dir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures the matching restore: scanning the
// checkpoint directory, CRC-verifying the newest file, and decoding it.
func BenchmarkCheckpointRestore(b *testing.B) {
	ck := benchCheckpoint()
	dir := b.TempDir()
	if _, err := ck.WriteFile(dir); err != nil {
		b.Fatal(err)
	}
	bytes := int64(4 * (len(ck.Weights) + len(ck.Velocity)))
	for _, r := range ck.Residuals {
		bytes += int64(4 * len(r))
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := train.LoadLatestCheckpoint(dir)
		if err != nil {
			b.Fatal(err)
		}
		if got.NextIter != ck.NextIter {
			b.Fatal("restore mismatch")
		}
	}
}

// benchCheckpoint builds a snapshot sized like a 4-worker mini-AlexNet run
// (~2M parameters), with error-feedback residuals for every member.
func benchCheckpoint() *train.Checkpoint {
	const numParams = 1 << 21
	rng := rand.New(rand.NewSource(11))
	vec := func() []float32 {
		v := make([]float32, numParams)
		for i := range v {
			v[i] = rng.Float32()
		}
		return v
	}
	ck := &train.Checkpoint{
		Universe: 4, Epoch: 1, NextIter: 1000, Members: []int{0, 1, 3},
		Weights:  vec(),
		Velocity: vec(),
		Cursors:  map[int]uint64{0: 1000, 1: 1000, 3: 1000},
		Residuals: map[int][]float32{
			0: vec(), 1: vec(), 3: vec(),
		},
	}
	return ck
}
