module inceptionn

go 1.22
