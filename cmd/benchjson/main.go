// Command benchjson converts `go test -bench` output into a machine-
// readable JSON report. Given two result sets — one captured with
// GOMAXPROCS=1 and one with the default parallelism — it pairs the
// benchmarks by name and reports the multi-core speedup of each, which is
// how `make bench` produces bench/BENCH_2.json.
//
// Usage:
//
//	benchjson -single single.txt -multi multi.txt -out bench/BENCH_2.json
//
// The -single flag is optional; without it, speedups are omitted and the
// report carries only the -multi numbers.
//
// Overhead mode pairs two benchmarks from the same -multi file — an
// instrumented variant and its baseline — and reports the relative cost,
// which is how `make bench4` produces bench/BENCH_4.json for the observability
// recorder:
//
//	benchjson -multi obs.txt -overhead-off 'BenchmarkObsOverhead/recorderOff' \
//	    -overhead-on 'BenchmarkObsOverhead/recorderOn' -out bench/BENCH_4.json
//
// Diff mode compares two reports this tool previously wrote (either the
// plain entry-list shape or an OverheadReport) and fails when any shared
// benchmark regressed beyond the bound, which is how `make benchdiff`
// gates CI against the checked-in bench/ baselines:
//
//	benchjson -diff -max-regress 0.10 bench/BENCH_9.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark result (the -multi run), optionally annotated
// with the single-core baseline.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"b_per_op,omitempty"`
	AllocsQty  int64   `json:"allocs_per_op,omitempty"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`

	SingleNsPerOp float64 `json:"single_ns_per_op,omitempty"`
	Speedup       float64 `json:"speedup_vs_single,omitempty"`
}

// benchLine matches "BenchmarkName-8   123   456789 ns/op ..." and
// captures the name (GOMAXPROCS suffix stripped), iteration count, and
// the metric fields that follow.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// parseFile reads one `go test -bench` output file into name→entry.
func parseFile(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]Entry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = int64(v)
			case "allocs/op":
				e.AllocsQty = int64(v)
			case "MB/s":
				e.MBPerSec = v
			}
		}
		out[e.Name] = e
	}
	return out, sc.Err()
}

// OverheadReport wraps the entry list when overhead mode is active: the
// document leads with the paired baseline/instrumented numbers so the
// acceptance bound (overhead_pct) is machine-checkable.
type OverheadReport struct {
	BaselineName    string  `json:"baseline_name"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	OnName          string  `json:"instrumented_name"`
	OnNsPerOp       float64 `json:"instrumented_ns_per_op"`
	OverheadPct     float64 `json:"overhead_pct"`
	Benchmarks      []Entry `json:"benchmarks"`
}

// readReport loads a JSON report this tool wrote, accepting both the
// plain []Entry shape and the OverheadReport wrapper, keyed by name.
func readReport(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		var rep OverheadReport
		if err2 := json.Unmarshal(data, &rep); err2 != nil {
			return nil, fmt.Errorf("%s: neither an entry list (%v) nor an overhead report (%v)", path, err, err2)
		}
		entries = rep.Benchmarks
	}
	out := make(map[string]Entry, len(entries))
	for _, e := range entries {
		out[e.Name] = e
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return out, nil
}

// runDiff compares a new report against a baseline. A benchmark regresses
// when its ns/op grew — or its MB/s shrank — by more than maxRegress
// (fractional: 0.10 = 10%). Benchmarks present in only one report are
// listed but never fail the diff, so adding or retiring benchmarks does
// not break the gate.
func runDiff(oldPath, newPath string, maxRegress float64) error {
	oldRes, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRes, err := readReport(newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}

	shared, regressed := 0, 0
	for _, name := range names {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			fmt.Printf("  %-44s only in %s\n", name, oldPath)
			continue
		}
		shared++
		var notes []string
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+maxRegress) {
			regressed++
			notes = append(notes, fmt.Sprintf("ns/op %+.1f%% REGRESSED", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp))
		} else if o.NsPerOp > 0 {
			notes = append(notes, fmt.Sprintf("ns/op %+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp))
		}
		if o.MBPerSec > 0 && n.MBPerSec < o.MBPerSec*(1-maxRegress) {
			regressed++
			notes = append(notes, fmt.Sprintf("MB/s %+.1f%% REGRESSED", 100*(n.MBPerSec-o.MBPerSec)/o.MBPerSec))
		} else if o.MBPerSec > 0 {
			notes = append(notes, fmt.Sprintf("MB/s %+.1f%%", 100*(n.MBPerSec-o.MBPerSec)/o.MBPerSec))
		}
		fmt.Printf("  %-44s %s\n", name, strings.Join(notes, "  "))
	}
	for name := range newRes {
		if _, ok := oldRes[name]; !ok {
			fmt.Printf("  %-44s only in %s\n", name, newPath)
		}
	}
	if shared == 0 {
		return fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath)
	}
	if regressed > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond the %.0f%% bound", regressed, 100*maxRegress)
	}
	fmt.Printf("benchdiff: %d shared benchmark(s) within the %.0f%% bound\n", shared, 100*maxRegress)
	return nil
}

func run() error {
	single := flag.String("single", "", "bench output captured with GOMAXPROCS=1 (optional)")
	multi := flag.String("multi", "", "bench output captured with default GOMAXPROCS (required)")
	out := flag.String("out", "bench/BENCH_2.json", "output JSON path")
	overheadOff := flag.String("overhead-off", "", "overhead mode: baseline benchmark name in -multi")
	overheadOn := flag.String("overhead-on", "", "overhead mode: instrumented benchmark name in -multi")
	maxOverhead := flag.Float64("max-overhead-pct", 0, "overhead mode: fail when overhead_pct exceeds this bound (0 = no bound)")
	minMBPerS := flag.String("min-mb-per-s", "", "throughput gate: comma-separated name:value pairs; fail when a named benchmark reports less MB/s")
	diff := flag.Bool("diff", false, "diff mode: compare two JSON reports (old new) and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.10, "diff mode: fractional per-benchmark regression bound (0.10 = 10%)")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two reports: benchjson -diff [-max-regress 0.10] old.json new.json")
		}
		return runDiff(flag.Arg(0), flag.Arg(1), *maxRegress)
	}
	if *multi == "" {
		return fmt.Errorf("-multi is required")
	}
	if (*overheadOff == "") != (*overheadOn == "") {
		return fmt.Errorf("-overhead-off and -overhead-on must be given together")
	}

	multiRes, err := parseFile(*multi)
	if err != nil {
		return fmt.Errorf("parsing %s: %w", *multi, err)
	}
	if len(multiRes) == 0 {
		return fmt.Errorf("%s: no benchmark lines found", *multi)
	}
	var singleRes map[string]Entry
	if *single != "" {
		if singleRes, err = parseFile(*single); err != nil {
			return fmt.Errorf("parsing %s: %w", *single, err)
		}
	}

	entries := make([]Entry, 0, len(multiRes))
	for _, e := range multiRes {
		if s, ok := singleRes[e.Name]; ok && e.NsPerOp > 0 {
			e.SingleNsPerOp = s.NsPerOp
			e.Speedup = s.NsPerOp / e.NsPerOp
		}
		entries = append(entries, e)
	}
	// Deterministic order for diffable reports.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Name < entries[j-1].Name; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}

	// Throughput gates: each "name:value" pair demands that benchmark
	// reported at least value MB/s (it must have used b.SetBytes).
	if *minMBPerS != "" {
		for _, part := range strings.Split(*minMBPerS, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad -min-mb-per-s entry %q, want name:value", part)
			}
			bound, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return fmt.Errorf("bad -min-mb-per-s bound in %q: %w", part, err)
			}
			e, ok := multiRes[kv[0]]
			if !ok {
				return fmt.Errorf("-min-mb-per-s: benchmark %q not found in %s", kv[0], *multi)
			}
			if e.MBPerSec < bound {
				return fmt.Errorf("%s throughput %.1f MB/s is below the %.1f MB/s bound", e.Name, e.MBPerSec, bound)
			}
			fmt.Printf("throughput: %s %.1f MB/s (bound %.1f MB/s)\n", e.Name, e.MBPerSec, bound)
		}
	}

	var doc interface{} = entries
	if *overheadOff != "" {
		off, okOff := multiRes[*overheadOff]
		on, okOn := multiRes[*overheadOn]
		if !okOff || !okOn {
			return fmt.Errorf("overhead pair not found in %s: %q ok=%v, %q ok=%v",
				*multi, *overheadOff, okOff, *overheadOn, okOn)
		}
		if off.NsPerOp <= 0 {
			return fmt.Errorf("baseline %q has no ns/op", *overheadOff)
		}
		rep := OverheadReport{
			BaselineName:    *overheadOff,
			BaselineNsPerOp: off.NsPerOp,
			OnName:          *overheadOn,
			OnNsPerOp:       on.NsPerOp,
			OverheadPct:     100 * (on.NsPerOp - off.NsPerOp) / off.NsPerOp,
			Benchmarks:      entries,
		}
		fmt.Printf("overhead: %s %.0f ns/op vs %s %.0f ns/op = %+.2f%%\n",
			rep.BaselineName, rep.BaselineNsPerOp, rep.OnName, rep.OnNsPerOp, rep.OverheadPct)
		if *maxOverhead > 0 && rep.OverheadPct > *maxOverhead {
			return fmt.Errorf("overhead %.2f%% exceeds the %.2f%% bound", rep.OverheadPct, *maxOverhead)
		}
		doc = rep
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(entries))
	for _, e := range entries {
		if e.Speedup > 0 {
			fmt.Printf("  %-40s %12.0f ns/op  speedup %.2fx\n", e.Name, e.NsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-40s %12.0f ns/op\n", e.Name, e.NsPerOp)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
