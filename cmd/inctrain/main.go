// Command inctrain runs distributed DNN training on the simulated cluster:
// the INCEPTIONN gradient-centric ring or the worker-aggregator baseline,
// with optional in-NIC gradient compression.
//
// Usage:
//
//	inctrain -model hdc-small -workers 4 -algo ring -iters 300 -compress -bound 10
//	inctrain -algo ring2 -workers 8 -group 4         # Fig. 1c hierarchy
//	inctrain -algo switch -workers 8 -switch-chunk 4096
//	                                                 # in-network switch aggregation
//	inctrain -algo switch -switch-fallback -step-timeout 2s -chaos-crash 4:10
//	                                                 # kill the switch mid-run; heal onto the ring
//	inctrain -tcp -compress                          # real loopback TCP sockets
//	inctrain -elastic -tcp -join -checkpoint-dir ck -suspect-after 2s
//	                                                 # elastic ring over TCP with auto-rejoin
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/nic"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
	"inceptionn/internal/tune"
)

// parseCrashSpec parses -chaos-crash: comma-separated node:afterSends
// pairs, e.g. "2:65" or "1:40,3:200".
func parseCrashSpec(spec string) (map[int]uint64, error) {
	out := make(map[int]uint64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		node, after, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad crash spec %q (want node:afterSends)", part)
		}
		id, err := strconv.Atoi(node)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad crash spec node %q", node)
		}
		n, err := strconv.ParseUint(after, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad crash spec count %q", after)
		}
		out[id] = n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty crash spec %q", spec)
	}
	return out, nil
}

// parseStragglerSpec parses -straggle: comma-separated node:duration
// pairs, e.g. "2:5ms" or "0:1ms,3:10ms".
func parseStragglerSpec(spec string) (map[int]time.Duration, error) {
	out := make(map[int]time.Duration)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		node, dur, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad straggle spec %q (want node:duration)", part)
		}
		id, err := strconv.Atoi(node)
		if err != nil || id < 0 {
			return nil, fmt.Errorf("bad straggle spec node %q", node)
		}
		d, err := time.ParseDuration(dur)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad straggle spec duration %q", dur)
		}
		out[id] = d
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty straggle spec %q", spec)
	}
	return out, nil
}

func main() {
	model := flag.String("model", "hdc-small", "trainable model: hdc, hdc-small, mini-alexnet, mini-vgg, mini-resnet")
	workers := flag.Int("workers", 4, "number of worker nodes")
	algo := flag.String("algo", "ring", "distributed algorithm: ring, wa, tree2 (Fig 1b), ring2 (Fig 1c), switch (in-network aggregation)")
	groupSize := flag.Int("group", 4, "group size for the hierarchical algorithms")
	switchChunk := flag.Int("switch-chunk", 0, "switch algorithm: floats per streamed chunk (0 = whole gradient; models bounded switch memory)")
	switchFallback := flag.Bool("switch-fallback", false, "switch algorithm: survive switch failure by falling back to the ring collective mid-run, bit-exact (requires -step-timeout)")
	iters := flag.Int("iters", 300, "training iterations")
	batch := flag.Int("batch", 16, "per-node batch size")
	lr := flag.Float64("lr", 0.02, "base learning rate")
	compress := flag.Bool("compress", false, "enable in-NIC lossy gradient compression")
	tcp := flag.Bool("tcp", false, "run the ring exchange over genuine loopback TCP sockets")
	chaosDrop := flag.Float64("chaos-drop", 0, "TCP chaos: frame drop rate on every link (0..1)")
	chaosCorrupt := flag.Float64("chaos-corrupt", 0, "TCP chaos: frame bit-flip rate on every link (0..1)")
	chaosSeed := flag.Int64("chaos-seed", 1, "TCP chaos: deterministic injection seed")
	stepTimeout := flag.Duration("step-timeout", 0, "TCP: per-hop ring deadline (0 = none), e.g. 10s")
	bound := flag.Int("bound", 10, "codec error bound exponent E (bound 2^-E)")
	elastic := flag.Bool("elastic", false, "use the elastic ring runner: failure detection, ring reconfiguration, graceful SIGINT/SIGTERM halt")
	checkpointDir := flag.String("checkpoint-dir", "", "elastic: write durable checkpoints into this directory (implies -elastic)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "elastic: also checkpoint every N iterations (requires -checkpoint-dir)")
	resume := flag.Bool("resume", false, "elastic: resume from the newest valid checkpoint in -checkpoint-dir")
	suspectAfter := flag.Duration("suspect-after", 0, "elastic: declare a worker dead after this much heartbeat silence (0 = crash self-reports only)")
	join := flag.Bool("join", false, "elastic over TCP: revive evicted workers — reload the newest checkpoint, rejoin through the coordinator, splice back into the ring (requires -elastic -tcp)")
	coordAddr := flag.String("coord-addr", "", "elastic over TCP: control-channel listen address, host:port (empty = ephemeral localhost port)")
	checkpointKeep := flag.Int("checkpoint-keep", 3, "elastic: prune -checkpoint-dir to the newest N valid checkpoints after each write (0 = default 3, negative = keep all)")
	seed := flag.Int64("seed", 42, "seed for model init and data")
	samples := flag.Int("samples", 4000, "synthetic training samples")
	evalEvery := flag.Int("eval", 50, "evaluate every N iterations")
	chaosCrash := flag.String("chaos-crash", "", "chaos: crash nodes after N frame sends, e.g. \"2:65\" or \"1:40,3:200\" (requires -tcp or -elastic)")
	metricsAddr := flag.String("metrics-addr", "", "serve live observability on this address (/metrics JSON or ?format=prom, /trace JSONL, /clock, /debug/pprof), e.g. 127.0.0.1:8080")
	traceOut := flag.String("trace-out", "", "write the step trace as JSONL to this file when the run ends (inctrace reads it)")
	traceDir := flag.String("trace-dir", "", "also split the trace into per-node JSONL files (trace_node<N>.jsonl) in this directory, for `inctrace merge`")
	metricsOut := flag.String("metrics-out", "", "write the final /metrics JSON snapshot to this file when the run ends")
	traceCap := flag.Int("trace-cap", 1<<16, "step tracer ring-buffer capacity (spans; oldest overwritten)")
	straggle := flag.String("straggle", "", "inject per-iteration compute delay on nodes, e.g. \"2:5ms\" or \"0:1ms,3:10ms\" (validates `inctrace blame`)")
	autotune := flag.Bool("autotune", false, "probe the machine, fit the α-β-γ model from the probe traces, and train with the best strategy/chunk/compression plan (in-process fabric only; overrides -algo and chunking)")
	probeIters := flag.Int("probe-iters", 16, "autotune: iterations per probe run")
	healthOn := flag.Bool("health", false, "run the online health engine: streaming straggler/link/transport anomaly detection with typed incidents (serves /health when -metrics-addr is set)")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "health engine poll interval for the counter/gauge detectors")
	blackboxDir := flag.String("blackbox-dir", "", "write a flight-recorder black-box JSONL dump into this directory whenever an incident opens (implies -health; replay with `inctrace incidents -replay` or `inctrace blame`)")
	flag.Parse()

	build, ok := models.Builders[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "inctrain: unknown model %q\n", *model)
		os.Exit(2)
	}

	var trainDS, testDS data.Dataset
	if *model == "hdc" || *model == "hdc-small" {
		trainDS = data.NewDigits(*samples, *seed)
		testDS = data.NewDigits(*samples/8, *seed+1)
	} else {
		trainDS = data.NewImages(*samples, *seed)
		testDS = data.NewImages(*samples/8, *seed+1)
	}

	o := train.Options{
		Workers:      *workers,
		BatchPerNode: *batch,
		Schedule:     opt.StepSchedule{Base: *lr, Factor: 5, Every: *iters * 2 / 3},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         *seed,
		EvalEvery:    *evalEvery,
		EvalSamples:  512,
	}
	switch *algo {
	case "ring":
		o.Algo = train.Ring
	case "wa":
		o.Algo = train.WorkerAggregator
	case "tree2":
		o.Algo = train.HierarchicalTree
		o.GroupSize = *groupSize
	case "ring2":
		o.Algo = train.HierarchicalRing
		o.GroupSize = *groupSize
	case "switch":
		o.Algo = train.SwitchReduce
		o.SwitchChunk = *switchChunk
	default:
		fmt.Fprintf(os.Stderr, "inctrain: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	// Observability: a registry + bounded tracer feed the live HTTP
	// endpoint, the end-of-run trace/metrics files, and the NIC datapath
	// counters. Created before the processor so the engines get the
	// recorder. Leaving every obs flag unset keeps o.Obs nil and the hot
	// paths free of even a clock read.
	if *blackboxDir != "" {
		*healthOn = true
	}
	var reg *obs.Registry
	var tracer *obs.Tracer
	// -health needs the recorder even when no trace/metrics output was
	// asked for: its detectors read the registry and the span ring.
	if *metricsAddr != "" || *traceOut != "" || *traceDir != "" || *metricsOut != "" || *healthOn {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(*traceCap)
		reg.Func("fpcodec_values_compressed", func() float64 {
			v, _ := fpcodec.StreamTotals()
			return float64(v)
		})
		reg.Func("fpcodec_bits_emitted", func() float64 {
			_, b := fpcodec.StreamTotals()
			return float64(b)
		})
		o.Obs = obs.NewRecorder(reg, tracer)
	}

	// The health engine subscribes to the recorder and runs its polled
	// detectors in the background; runners push step completions and
	// self-healing events into it through o.Health.
	var engine *health.Engine
	if *healthOn {
		engine = health.New(o.Obs, health.Options{BlackboxDir: *blackboxDir})
		engine.Start(*healthInterval)
		o.Health = engine
		if *blackboxDir != "" {
			fmt.Printf("health: engine on (poll %s), black-box dumps -> %s\n", *healthInterval, *blackboxDir)
		} else {
			fmt.Printf("health: engine on (poll %s)\n", *healthInterval)
		}
	}

	// -autotune needs a wire processor even when -compress is off, so the
	// planner can probe and rank compressed candidates; o.Compress still
	// follows the flag (the tuner flips it when a compressed plan wins).
	if *compress || *autotune {
		b, err := fpcodec.NewBound(*bound)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inctrain:", err)
			os.Exit(2)
		}
		o.Processor = nic.Processor{Bound: b, Obs: o.Obs}
		o.Compress = *compress
	}
	if *straggle != "" {
		s, serr := parseStragglerSpec(*straggle)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "inctrain:", serr)
			os.Exit(2)
		}
		o.Straggler = s
		fmt.Printf("straggle: %v\n", s)
	}

	if *checkpointDir != "" {
		*elastic = true
	}
	if !*tcp && !*elastic && *algo != "switch" && (*chaosDrop > 0 || *chaosCorrupt > 0 || *chaosCrash != "" || *stepTimeout > 0) {
		fmt.Fprintln(os.Stderr, "inctrain: -chaos-* and -step-timeout require -tcp, -elastic, or -algo switch")
		os.Exit(2)
	}
	if *switchFallback {
		if *algo != "switch" {
			fmt.Fprintln(os.Stderr, "inctrain: -switch-fallback requires -algo switch")
			os.Exit(2)
		}
		if *stepTimeout <= 0 {
			fmt.Fprintln(os.Stderr, "inctrain: -switch-fallback requires -step-timeout > 0 (stall detection needs a deadline)")
			os.Exit(2)
		}
	}
	if (*checkpointEvery > 0 || *resume) && *checkpointDir == "" {
		fmt.Fprintln(os.Stderr, "inctrain: -checkpoint-every and -resume require -checkpoint-dir")
		os.Exit(2)
	}
	if *elastic && *algo != "ring" {
		fmt.Fprintln(os.Stderr, "inctrain: -elastic requires -algo ring")
		os.Exit(2)
	}
	if *autotune && (*tcp || *elastic) {
		fmt.Fprintln(os.Stderr, "inctrain: -autotune probes the in-process fabric and cannot combine with -tcp or -elastic")
		os.Exit(2)
	}
	if (*join || *coordAddr != "") && !(*elastic && *tcp) {
		fmt.Fprintln(os.Stderr, "inctrain: -join and -coord-addr require -elastic -tcp")
		os.Exit(2)
	}
	// Shared chaos config: the TCP fabric and the elastic runner both
	// consume o.Chaos through the same injector.
	if *chaosDrop > 0 || *chaosCorrupt > 0 || *chaosCrash != "" {
		cfg := &fault.Config{
			Seed:    *chaosSeed,
			Default: fault.LinkFaults{DropRate: *chaosDrop, CorruptRate: *chaosCorrupt},
		}
		if *chaosCrash != "" {
			crash, cerr := parseCrashSpec(*chaosCrash)
			if cerr != nil {
				fmt.Fprintln(os.Stderr, "inctrain:", cerr)
				os.Exit(2)
			}
			cfg.CrashAfter = crash
		}
		o.Chaos = cfg
		fmt.Printf("chaos: drop %.1f%%, corrupt %.1f%%, crash %q (seed %d)\n",
			100**chaosDrop, 100**chaosCorrupt, *chaosCrash, *chaosSeed)
	}

	if *metricsAddr != "" {
		var extra []obs.Mount
		if engine != nil {
			extra = append(extra, obs.Mount{Pattern: "/health", Handler: engine.Handler()})
		}
		addr, serr := obs.Serve(*metricsAddr, reg, tracer, extra...)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "inctrain:", serr)
			os.Exit(2)
		}
		fmt.Printf("observability: http://%s/metrics (JSON, ?format=prom), /trace (JSONL), /clock, /debug/pprof\n", addr)
		if engine != nil {
			fmt.Printf("health: http://%s/health (JSON, ?format=prom)\n", addr)
		}
	}

	// tuneMeta, when set, is appended to -trace-out as a self-describing
	// tune_meta line: the run's workload plus (for auto-tuned runs) the
	// chosen plan and fitted parameters. `inctrace tune` then re-fits and
	// re-plans from the trace file alone.
	var tuneMeta *tune.Meta

	// flushObs persists the span ring buffer (whole-run file and/or
	// per-node split) and the final metrics snapshot, and settles the
	// health engine (final detector pass + incident report); called on
	// every exit path that has training work behind it, including SIGINT.
	flushObs := func() {
		if engine != nil {
			engine.Close() // idempotent: analyzes the tail, runs a last poll
			if incs := engine.Incidents(); len(incs) > 0 {
				fmt.Printf("health: %d incident(s):\n", len(incs))
				health.RenderIncidents(os.Stdout, incs)
			} else {
				fmt.Println("health: no incidents")
			}
		}
		if tracer != nil && *traceOut != "" {
			f, ferr := os.Create(*traceOut)
			if ferr == nil {
				ferr = tracer.WriteJSONL(f)
				if ferr == nil && tuneMeta != nil {
					ferr = tuneMeta.Append(f)
				}
				if cerr := f.Close(); ferr == nil {
					ferr = cerr
				}
			}
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "inctrain: trace:", ferr)
			} else {
				fmt.Printf("trace: %d spans retained -> %s (render with inctrace)\n", len(tracer.Snapshot()), *traceOut)
			}
		}
		if tracer != nil && *traceDir != "" {
			if err := os.MkdirAll(*traceDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "inctrain: trace-dir:", err)
			} else {
				nodes := make(map[int]bool)
				for _, s := range tracer.Snapshot() {
					nodes[s.Node] = true
				}
				written := 0
				for node := range nodes {
					path := filepath.Join(*traceDir, fmt.Sprintf("trace_node%d.jsonl", node))
					f, ferr := os.Create(path)
					if ferr == nil {
						ferr = tracer.WriteNodeJSONL(f, node)
						if cerr := f.Close(); ferr == nil {
							ferr = cerr
						}
					}
					if ferr != nil {
						fmt.Fprintln(os.Stderr, "inctrain: trace-dir:", ferr)
						continue
					}
					written++
				}
				fmt.Printf("trace: %d per-node files -> %s (merge with `inctrace merge %s/trace_node*.jsonl`)\n",
					written, *traceDir, *traceDir)
			}
		}
		if reg != nil && *metricsOut != "" {
			data, jerr := json.MarshalIndent(reg.Snapshot(), "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*metricsOut, append(data, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "inctrain: metrics:", jerr)
			} else {
				fmt.Printf("metrics: final snapshot -> %s\n", *metricsOut)
			}
		}
	}

	// Non-elastic runs have no graceful halt protocol, but a ^C must not
	// lose the observability artifacts: flush what the tracer holds, then
	// exit with the conventional 128+SIGINT status. (Elastic runs install
	// their own two-stage handler below.)
	if !*elastic {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s, ok := <-sig
			if !ok {
				return
			}
			fmt.Fprintf(os.Stderr, "inctrain: %v: flushing observability artifacts\n", s)
			flushObs()
			os.Exit(130)
		}()
		defer signal.Stop(sig)
	}

	// The auto-tune loop: short probe runs, a fitted model, a ranked plan
	// sweep, and the winning exchange configuration installed into the
	// options the real run trains with.
	if *autotune {
		fmt.Printf("autotune: probing the fabric (%d iterations per probe)\n", *probeIters)
		tres, applied, terr := tune.AutoTune(build, trainDS, testDS, o, tune.AutoOptions{ProbeIters: *probeIters})
		if terr != nil {
			fmt.Fprintln(os.Stderr, "inctrain:", terr)
			os.Exit(1)
		}
		tres.Render(os.Stdout)
		o = applied
		if o.Obs != nil {
			tres.PublishGauges(o.Obs)
		}
		w := tres.Workload
		w.Strategy = tres.Chosen.Strategy
		w.ChunkFloats = tres.Chosen.ChunkFloats
		w.Compress = tres.Chosen.Compress
		if w.Compress {
			w.Ratio = tres.Fit.Ratio
		}
		w.Iters = *iters
		m := tres.MetaFor(w)
		tuneMeta = &m
		fmt.Printf("\nautotune: chosen %s, predicted %.4fs/iter (probe cost %.1fs)\n",
			tres.Chosen.PlanOption, tres.Chosen.PredIterSec, tres.ProbeSeconds)
	}

	transport := "in-process fabric"
	if *tcp {
		transport = "loopback TCP"
	}
	fmt.Printf("inctrain: %s on %d workers (%s over %s), %d iters, batch %d, compress=%v\n",
		*model, *workers, *algo, transport, *iters, *batch, *compress)
	var res train.Result
	var err error
	if *elastic {
		o.CheckpointDir = *checkpointDir
		o.CheckpointEvery = *checkpointEvery
		o.CheckpointKeep = *checkpointKeep
		o.Resume = *resume
		o.SuspectAfter = *suspectAfter
		o.StepTimeout = *stepTimeout
		o.Join = *join
		o.CoordAddr = *coordAddr
		// A first SIGINT/SIGTERM drains the run gracefully: the workers
		// agree on a halt iteration and write a final checkpoint before the
		// process exits nonzero. A second signal kills it the default way.
		stop := make(chan struct{})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			s, ok := <-sig
			if !ok {
				return
			}
			fmt.Fprintf(os.Stderr, "inctrain: %v: halting at the next safe iteration boundary\n", s)
			close(stop)
			signal.Stop(sig)
		}()
		o.Stop = stop
		if *tcp {
			b, berr := fpcodec.NewBound(*bound)
			if berr != nil {
				fmt.Fprintln(os.Stderr, "inctrain:", berr)
				os.Exit(2)
			}
			res, err = train.RunElasticTCP(build, trainDS, testDS, *iters, o, b)
		} else {
			res, err = train.RunElastic(build, trainDS, testDS, *iters, o)
		}
		signal.Stop(sig)
		if errors.Is(err, train.ErrInterrupted) {
			if *checkpointDir != "" {
				fmt.Fprintf(os.Stderr, "inctrain: interrupted; checkpoint written to %s (rerun with -resume to continue)\n", *checkpointDir)
			} else {
				fmt.Fprintln(os.Stderr, "inctrain: interrupted (no -checkpoint-dir, progress discarded)")
			}
			flushObs()
			os.Exit(1)
		}
	} else if *tcp {
		if *algo != "ring" && *algo != "switch" {
			fmt.Fprintln(os.Stderr, "inctrain: -tcp supports only -algo ring or -algo switch")
			os.Exit(2)
		}
		b, berr := fpcodec.NewBound(*bound)
		if berr != nil {
			fmt.Fprintln(os.Stderr, "inctrain:", berr)
			os.Exit(2)
		}
		o.StepTimeout = *stepTimeout
		if *algo == "switch" {
			o.SwitchFallback = *switchFallback
			res, err = train.RunSwitchTCP(build, trainDS, testDS, *iters, o, b)
		} else {
			res, err = train.RunRingTCP(build, trainDS, testDS, *iters, o, b)
		}
	} else {
		if *algo == "switch" {
			o.SwitchFallback = *switchFallback
			o.StepTimeout = *stepTimeout
		}
		res, err = train.Run(build, trainDS, testDS, *iters, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "inctrain:", err)
		flushObs()
		os.Exit(1)
	}
	for _, p := range res.Evals {
		fmt.Printf("  iter %5d  accuracy %5.1f%%  loss %.4f\n", p.Iter, 100*p.Accuracy, p.Loss)
	}
	fmt.Printf("final: accuracy %.1f%%  loss %.4f\n", 100*res.FinalAcc, res.FinalLoss)
	if res.Fallbacks > 0 {
		fmt.Printf("fallback: %d collective fallback(s), detected in %.3fs — %s\n",
			res.Fallbacks, res.FallbackDetectSeconds, res.FallbackCause)
	}
	if res.RawBytes > 0 && res.WireBytes > 0 {
		fmt.Printf("traffic: %d raw bytes, %d wire bytes (%.2fx reduction)\n",
			res.RawBytes, res.WireBytes, float64(res.RawBytes)/float64(res.WireBytes))
	} else if res.WireBytes > 0 {
		// Transports without per-link raw-byte accounting (compressed
		// elastic TCP) report only what actually crossed the wire.
		fmt.Printf("traffic: %d wire bytes\n", res.WireBytes)
	}
	if res.ComputeSeconds > 0 || res.CommSeconds > 0 {
		fmt.Printf("timing: compute %.3fs, comm %.3fs, straggler wait %.3fs (summed across workers)\n",
			res.ComputeSeconds, res.CommSeconds, res.StragglerWaitSeconds)
	}
	// Plain runs get a self-describing tune_meta line too, so
	// `inctrace tune run.jsonl` can re-fit from the trace file alone.
	if tuneMeta == nil && tracer != nil && *traceOut != "" {
		w := tune.Workload{
			Workers:     *workers,
			ModelBytes:  build(rand.New(rand.NewSource(*seed))).SizeBytes(),
			Strategy:    strategyName(*algo),
			ChunkFloats: o.ChunkSize,
			Compress:    o.Compress,
			Iters:       *iters,
		}
		if *algo == "switch" {
			w.ChunkFloats = o.SwitchChunk
		}
		if o.Compress && res.RawBytes > 0 && res.WireBytes > 0 {
			w.Ratio = float64(res.RawBytes) / float64(res.WireBytes)
		}
		if w.Validate() == nil {
			m := tune.Meta{Version: 1, Workload: w}
			tuneMeta = &m
		}
	}
	flushObs()
}

// strategyName maps the -algo flag onto the tune package's strategy
// vocabulary.
func strategyName(algo string) string {
	switch algo {
	case "ring":
		return "ring"
	case "wa":
		return "worker-aggregator"
	case "tree2":
		return "hierarchical-tree"
	case "ring2":
		return "hierarchical-ring"
	case "switch":
		return "switch"
	}
	return algo
}
