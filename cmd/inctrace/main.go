// Command inctrace renders the observability artifacts a training run
// produces: the per-node time breakdown (the shape of the paper's Fig. 13
// and Fig. 14 communication/computation splits) and an ASCII step
// timeline, from either a trace file written with `inctrain -trace-out`
// or a live `inctrain -metrics-addr` endpoint.
//
// Usage:
//
//	inctrace trace.jsonl                     # render a saved trace
//	inctrace -addr 127.0.0.1:8080            # scrape a live run
//	inctrace -width 120 -no-timeline trace.jsonl
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"inceptionn/internal/obs"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inctrace:", err)
	os.Exit(1)
}

// fetch GETs path from the live endpoint with a short timeout.
func fetch(addr, path string) ([]byte, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func main() {
	addr := flag.String("addr", "", "scrape a live run's -metrics-addr endpoint instead of reading a trace file")
	width := flag.Int("width", 100, "timeline width in character cells")
	noTimeline := flag.Bool("no-timeline", false, "skip the ASCII step timeline")
	noMetrics := flag.Bool("no-metrics", false, "skip the metrics snapshot (live mode only)")
	flag.Parse()

	var spans []obs.Span
	var err error
	switch {
	case *addr != "":
		body, ferr := fetch(*addr, "/trace")
		if ferr != nil {
			fatal(ferr)
		}
		spans, err = obs.ReadSpans(bytes.NewReader(body))
	case flag.NArg() == 1:
		f, ferr := os.Open(flag.Arg(0))
		if ferr != nil {
			fatal(ferr)
		}
		spans, err = obs.ReadSpans(f)
		f.Close()
	default:
		fmt.Fprintln(os.Stderr, "usage: inctrace [flags] trace.jsonl | inctrace -addr host:port")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("trace holds no spans (was the run started with -trace-out or -metrics-addr?)"))
	}

	bd := obs.Aggregate(spans)
	fmt.Printf("per-node time breakdown (%d spans):\n\n", len(spans))
	bd.RenderTable(os.Stdout)
	if !*noTimeline {
		fmt.Println()
		obs.RenderTimeline(os.Stdout, spans, *width)
	}
	if *addr != "" && !*noMetrics {
		body, ferr := fetch(*addr, "/metrics")
		if ferr != nil {
			fatal(ferr)
		}
		snap, perr := obs.ParseSnapshot(body)
		if perr != nil {
			fatal(perr)
		}
		fmt.Println()
		fmt.Println("metrics snapshot:")
		obs.RenderMetrics(os.Stdout, snap)
	}
}
