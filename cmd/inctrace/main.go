// Command inctrace renders and analyses the observability artifacts a
// training run (or a simulator) produces, all in the shared span schema:
//
//	inctrace trace.jsonl                      # per-node breakdown + timeline
//	inctrace -addr 127.0.0.1:8080             # same, scraped from a live run
//	inctrace breakdown [flags] traces...      # the explicit form of the above
//	inctrace metrics -addr 127.0.0.1:8080     # metric snapshot with quantiles
//	inctrace collect -out merged.jsonl A B C  # scrape live endpoints, clock
//	                                          # handshake, merge one timeline
//	inctrace merge -out merged.jsonl t0 t1 t2 # merge per-node trace files
//	inctrace blame merged.jsonl               # critical-path attribution:
//	                                          # gating node, blame matrix,
//	                                          # straggler report
//	inctrace blame -switch-node 4 sim.jsonl   # same, labelling the in-network
//	                                          # aggregation switch when it gates
//	inctrace calibrate -measured run.jsonl -sim sim.jsonl
//	                                          # per-phase sim-vs-measured
//	                                          # relative error table;
//	                                          # -max-rel-err gates CI
//	inctrace tune run.jsonl                   # fit α-β-γ from the trace,
//	                                          # rank strategy/chunk/compression
//	                                          # plans, what-if scaling
//	inctrace health -addr 127.0.0.1:8080      # health-engine status + incident
//	                                          # timeline from a live run
//	inctrace incidents blackbox-*.jsonl       # incident timeline from black-box
//	                                          # dumps; -replay runs the dump's
//	                                          # spans through breakdown + blame
//
// The bare-filename and -addr forms are the legacy interface and keep
// working unchanged; everything else is a subcommand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
	"inceptionn/internal/obs/health"
	"inceptionn/internal/tune"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "inctrace:", err)
	os.Exit(1)
}

// fetch GETs path from a live endpoint with a short timeout.
func fetch(addr, path string) ([]byte, error) {
	c := &http.Client{Timeout: 10 * time.Second}
	resp, err := c.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// gather merges any mix of trace files and (when addr is set) one live
// endpoint into a single aligned timeline.
func gather(addr string, files []string) (*obs.Merged, error) {
	c := obs.NewCollector()
	if addr != "" {
		if err := c.AddEndpoint(addr); err != nil {
			return nil, err
		}
	}
	for _, f := range files {
		if err := c.AddFile(f); err != nil {
			return nil, err
		}
	}
	return c.Merge()
}

// renderSources prints how each source was clock-aligned during a merge.
func renderSources(m *obs.Merged) {
	fmt.Printf("%-28s %6s %6s %14s %14s\n", "source", "node", "spans", "clock offset", "uncertainty")
	for _, s := range m.Sources {
		align := "meta epoch"
		if s.OffsetNs != 0 || s.UncertaintyNs != 0 {
			align = fmt.Sprintf("%+.3fms", float64(s.OffsetNs)/1e6)
		} else if !s.Aligned {
			align = "UNALIGNED"
		}
		unc := "-"
		if s.UncertaintyNs > 0 {
			unc = fmt.Sprintf("±%.3fms", float64(s.UncertaintyNs)/1e6)
		}
		fmt.Printf("%-28s %6d %6d %14s %14s\n", s.Name, s.Node, s.Spans, align, unc)
	}
}

func writeMerged(m *obs.Merged, out string) error {
	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := m.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("merged: %d spans from %d sources -> %s\n", len(m.Spans), len(m.Sources), out)
	return nil
}

// cmdBreakdown is the legacy default: per-node table + ASCII timeline
// (+ metrics when scraping a live run).
func cmdBreakdown(args []string) {
	fs := flag.NewFlagSet("breakdown", flag.ExitOnError)
	addr := fs.String("addr", "", "scrape a live run's -metrics-addr endpoint instead of reading a trace file")
	width := fs.Int("width", 100, "timeline width in character cells")
	noTimeline := fs.Bool("no-timeline", false, "skip the ASCII step timeline")
	noMetrics := fs.Bool("no-metrics", false, "skip the metrics snapshot (live mode only)")
	fs.Parse(args)

	if *addr == "" && fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace [breakdown] [flags] trace.jsonl... | inctrace -addr host:port")
		fmt.Fprintln(os.Stderr, "subcommands: breakdown, metrics, collect, merge, blame, calibrate, tune, health, incidents")
		fs.PrintDefaults()
		os.Exit(2)
	}
	m, err := gather(*addr, fs.Args())
	if err != nil {
		fatal(err)
	}
	if len(m.Spans) == 0 {
		fatal(fmt.Errorf("trace holds no spans (was the run started with -trace-out or -metrics-addr?)"))
	}

	bd := obs.Aggregate(m.Spans)
	fmt.Printf("per-node time breakdown (%d spans):\n\n", len(m.Spans))
	bd.RenderTable(os.Stdout)
	if !*noTimeline {
		fmt.Println()
		obs.RenderTimeline(os.Stdout, m.Spans, *width)
	}
	if *addr != "" && !*noMetrics {
		body, ferr := fetch(*addr, "/metrics")
		if ferr != nil {
			fatal(ferr)
		}
		snap, perr := obs.ParseSnapshot(body)
		if perr != nil {
			fatal(perr)
		}
		fmt.Println()
		fmt.Println("metrics snapshot:")
		obs.RenderMetrics(os.Stdout, snap)
	}
}

// cmdMetrics renders a metric snapshot (live or saved) with the
// histogram quantiles.
func cmdMetrics(args []string) {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "", "scrape this live endpoint's /metrics")
	fs.Parse(args)

	var body []byte
	var err error
	switch {
	case *addr != "":
		body, err = fetch(*addr, "/metrics")
	case fs.NArg() == 1:
		body, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: inctrace metrics (-addr host:port | metrics.json)")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	snap, err := obs.ParseSnapshot(body)
	if err != nil {
		fatal(err)
	}
	obs.RenderMetrics(os.Stdout, snap)
}

// cmdCollect scrapes live endpoints (trace + metrics + clock handshake)
// and merges them into one offset-corrected timeline.
func cmdCollect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	out := fs.String("out", "", "write the merged timeline as JSONL to this file")
	probes := fs.Int("probes", 7, "clock-handshake probes per endpoint (min-RTT sample wins)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace collect [-out merged.jsonl] host:port...")
		os.Exit(2)
	}
	c := obs.NewCollector()
	c.Probes = *probes
	for _, addr := range fs.Args() {
		if err := c.AddEndpoint(addr); err != nil {
			fatal(err)
		}
	}
	m, err := c.Merge()
	if err != nil {
		fatal(err)
	}
	renderSources(m)
	if err := writeMerged(m, *out); err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Printf("merged: %d spans from %d sources (use -out to save)\n", len(m.Spans), len(m.Sources))
	}
}

// cmdMerge merges per-node trace files (inctrain -trace-dir) into one
// timeline, aligned on their meta epochs.
func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	out := fs.String("out", "", "write the merged timeline as JSONL to this file")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace merge [-out merged.jsonl] trace_node0.jsonl...")
		os.Exit(2)
	}
	m, err := gather("", fs.Args())
	if err != nil {
		fatal(err)
	}
	renderSources(m)
	if err := writeMerged(m, *out); err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Printf("merged: %d spans from %d sources (use -out to save)\n", len(m.Spans), len(m.Sources))
	}
}

// cmdBlame runs the per-iteration critical-path attribution and prints
// the gating summary, blame matrix, and straggler report.
func cmdBlame(args []string) {
	fs := flag.NewFlagSet("blame", flag.ExitOnError)
	addr := fs.String("addr", "", "scrape a live endpoint instead of (or in addition to) trace files")
	minGap := fs.Duration("min-gap", 100*time.Microsecond, "iterations with max-min recv wait under this are balanced, not attributed")
	switchNode := fs.Int("switch-node", -1, "node id of the in-network aggregation switch, labelled \"(switch)\" when it gates (switch sim traces use id == workers)")
	fs.Parse(args)
	if *addr == "" && fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace blame [-min-gap 100us] [-switch-node N] (merged.jsonl... | -addr host:port)")
		os.Exit(2)
	}
	m, err := gather(*addr, fs.Args())
	if err != nil {
		fatal(err)
	}
	if len(m.Spans) == 0 {
		fatal(fmt.Errorf("no spans to attribute"))
	}
	r := obs.AttributeCriticalPath(m.Spans, *minGap)
	r.RenderBlame(os.Stdout)
	if node, share := r.Gating(); node >= 0 {
		label := ""
		if *switchNode >= 0 && node == *switchNode {
			label = " (switch)"
		}
		fmt.Printf("gating: node %d%s (%.0f%% of attributed iterations)\n", node, label, 100*share)
	} else {
		fmt.Println("gating: none")
	}
}

// cmdCalibrate diffs a simulated trace against a measured one, phase by
// phase, optionally gating on the largest relative error.
func cmdCalibrate(args []string) {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	measured := fs.String("measured", "", "measured trace JSONL (from a real run)")
	sim := fs.String("sim", "", "simulated trace JSONL (incbench -simtrace, or any RecordRaw producer)")
	maxRelErr := fs.Float64("max-rel-err", 0, "exit non-zero when any comparable phase's |rel err| exceeds this (0 = report only)")
	trim := fs.Float64("trim", 0, "drop the slowest fraction of measured cells per phase before averaging (outlier robustness)")
	fs.Parse(args)
	if *measured == "" || *sim == "" {
		fmt.Fprintln(os.Stderr, "usage: inctrace calibrate [-max-rel-err 0.15] [-trim 0.1] -measured run.jsonl -sim sim.jsonl")
		os.Exit(2)
	}
	read := func(path string) []obs.Span {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		spans, err := obs.ReadSpans(f)
		if err != nil {
			fatal(err)
		}
		return spans
	}
	c := obs.CalibrateTrimmed(read(*measured), read(*sim), *trim)
	fmt.Printf("calibration: %s (measured) vs %s (sim), per-phase mean seconds per node-iteration\n\n", *measured, *sim)
	c.Render(os.Stdout)
	if c.Comparable() > 0 {
		fmt.Printf("\nmax |rel err| over %d comparable phase(s): %.1f%%\n", c.Comparable(), 100*c.MaxAbsRelErr())
	}
	if *maxRelErr > 0 {
		if c.Comparable() == 0 {
			fatal(fmt.Errorf("-max-rel-err set but no phase is comparable (one-sided or empty traces)"))
		}
		if e := c.MaxAbsRelErr(); e > *maxRelErr {
			fatal(fmt.Errorf("max |rel err| %.3f exceeds -max-rel-err %.3f", e, *maxRelErr))
		}
	}
}

// cmdTune closes the observe→model→tune loop offline: it fits the α-β-γ
// parameter set from one or more measured traces and sweeps the
// strategy × chunk × compression plan space through the calibrated
// models, with a what-if extrapolation to larger scales. Traces written
// by auto-tuned or -trace-out runs carry a self-describing tune_meta
// line; for raw traces the workload comes from the flags.
func cmdTune(args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	workers := fs.Int("workers", 0, "workload workers (default: the trace's tune_meta line)")
	modelBytes := fs.Int64("model-bytes", 0, "model size in bytes (default: tune_meta)")
	strategy := fs.String("strategy", "ring", "workload strategy for raw traces (ring|switch|...)")
	chunk := fs.Int("chunk", 0, "workload chunk floats for raw traces (0 = whole block)")
	compress := fs.Bool("compress", false, "traces are from compressed runs (contribute codec rate + ratio only)")
	ratio := fs.Float64("ratio", 0, "compression ratio override for compressed plan candidates")
	iters := fs.Int("iters", 0, "iterations per trace (default: inferred from spans)")
	warmup := fs.Int("warmup", 0, "leading iterations to drop from each trace")
	noCompress := fs.Bool("no-compress", false, "exclude compressed candidates from the sweep")
	whatIf := fs.String("what-if", "", "comma-separated node counts for the scaling extrapolation (default ladder when empty)")
	top := fs.Int("top", 8, "ranked plans to print")
	maxRelErr := fs.Float64("max-rel-err", 0, "exit non-zero when the fit's comm-phase residual exceeds this (0 = report only)")
	jsonOut := fs.Bool("json", false, "emit the fit, ranked plans and what-if table as JSON")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace tune [flags] trace.jsonl...")
		fs.PrintDefaults()
		os.Exit(2)
	}

	fallback := tune.Workload{
		Workers:     *workers,
		ModelBytes:  *modelBytes,
		Strategy:    *strategy,
		ChunkFloats: *chunk,
		Compress:    *compress,
		Ratio:       *ratio,
		Iters:       *iters,
	}
	var samples []tune.Sample
	for _, path := range fs.Args() {
		s, _, err := tune.ReadTraceFile(path, fallback)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		s.WarmupIters = *warmup
		if err := s.Workload.Validate(); err != nil {
			fatal(fmt.Errorf("%s: no tune_meta line and incomplete flags: %w", path, err))
		}
		samples = append(samples, s)
	}
	fit, err := tune.Fit(samples, netsim.Params{})
	if err != nil {
		fatal(err)
	}

	w0 := samples[0].Workload
	pl := &tune.Planner{
		Fit:        fit,
		Workers:    w0.Workers,
		ModelBytes: w0.ModelBytes,
		Ratio:      *ratio,
		NoCompress: *noCompress,
	}
	if *workers > 0 {
		pl.Workers = *workers
	}
	if *modelBytes > 0 {
		pl.ModelBytes = *modelBytes
	}
	plans := pl.Rank(pl.Candidates())
	rows := pl.WhatIf(parseNodeList(*whatIf))

	if *jsonOut {
		out := struct {
			Fit    *tune.Fitted  `json:"fit"`
			Plans  []tune.Plan   `json:"plans"`
			WhatIf []tune.WhatIf `json:"what_if"`
		}{fit, plans, rows}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		fit.RenderFit(os.Stdout)
		fmt.Printf("\nranked plans (%d workers, %d MB model):\n", pl.Workers, pl.ModelBytes>>20)
		tune.RenderPlans(os.Stdout, plans, *top)
		fmt.Println("\nwhat-if scaling:")
		tune.RenderWhatIf(os.Stdout, rows)
	}
	if *maxRelErr > 0 && fit.MaxCommRelErr > *maxRelErr {
		fatal(fmt.Errorf("fit comm-phase residual %.3f exceeds -max-rel-err %.3f", fit.MaxCommRelErr, *maxRelErr))
	}
}

// parseNodeList parses "64,256,1024" (empty = nil, the default ladder).
func parseNodeList(s string) []int {
	if s == "" {
		return nil
	}
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			fatal(fmt.Errorf("bad -what-if node count %q", part))
		}
		nodes = append(nodes, n)
	}
	return nodes
}

// cmdHealth scrapes a live run's /health endpoint (inctrain -health
// -metrics-addr) and renders the engine status plus incident timeline.
func cmdHealth(args []string) {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	addr := fs.String("addr", "", "live run's -metrics-addr endpoint")
	fs.Parse(args)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "usage: inctrace health -addr host:port")
		os.Exit(2)
	}
	body, err := fetch(*addr, "/health")
	if err != nil {
		fatal(err)
	}
	var st health.Status
	if err := json.Unmarshal(body, &st); err != nil {
		fatal(fmt.Errorf("parse /health: %w", err))
	}
	state := "HEALTHY"
	if !st.Healthy {
		state = "UNHEALTHY"
	}
	fmt.Printf("health: %s  open=%d total=%d dumps=%d polls=%d uptime=%.0fs\n",
		state, st.Open, st.Total, st.Dumps, st.Polls, st.UptimeSecs)
	if len(st.ByDetector) > 0 {
		fmt.Printf("by detector:")
		for det, n := range st.ByDetector {
			fmt.Printf(" %s=%d", det, n)
		}
		fmt.Println()
	}
	fmt.Println()
	health.RenderIncidents(os.Stdout, st.Incidents)
}

// cmdIncidents renders the incident timeline held in black-box dumps
// and, with -replay, runs the dumped spans through the same breakdown
// and critical-path attribution the live trace tooling uses.
func cmdIncidents(args []string) {
	fs := flag.NewFlagSet("incidents", flag.ExitOnError)
	replay := fs.Bool("replay", false, "replay the dump's spans through breakdown + blame")
	minGap := fs.Duration("min-gap", 100*time.Microsecond, "blame threshold for -replay (see inctrace blame)")
	width := fs.Int("width", 100, "timeline width for -replay")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: inctrace incidents [-replay] blackbox-*.jsonl...")
		os.Exit(2)
	}

	var incs []health.Incident
	var spans []obs.Span
	for _, path := range fs.Args() {
		d, err := health.ReadDumpFile(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		incs = append(incs, d.Incidents...)
		spans = append(spans, d.Spans...)
	}
	fmt.Printf("%d incident(s) across %d dump(s):\n\n", len(incs), fs.NArg())
	health.RenderIncidents(os.Stdout, incs)

	if !*replay {
		return
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("dumps hold no spans to replay"))
	}
	fmt.Printf("\nreplay: %d pre-incident spans\n\n", len(spans))
	bd := obs.Aggregate(spans)
	bd.RenderTable(os.Stdout)
	fmt.Println()
	obs.RenderTimeline(os.Stdout, spans, *width)
	fmt.Println()
	r := obs.AttributeCriticalPath(spans, *minGap)
	r.RenderBlame(os.Stdout)
	if node, share := r.Gating(); node >= 0 {
		fmt.Printf("gating: node %d (%.0f%% of attributed iterations)\n", node, 100*share)
	} else {
		fmt.Println("gating: none")
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "breakdown":
			cmdBreakdown(args[1:])
			return
		case "metrics":
			cmdMetrics(args[1:])
			return
		case "collect":
			cmdCollect(args[1:])
			return
		case "merge":
			cmdMerge(args[1:])
			return
		case "blame":
			cmdBlame(args[1:])
			return
		case "calibrate":
			cmdCalibrate(args[1:])
			return
		case "tune":
			cmdTune(args[1:])
			return
		case "health":
			cmdHealth(args[1:])
			return
		case "incidents":
			cmdIncidents(args[1:])
			return
		}
	}
	// Legacy interface: `inctrace [flags] trace.jsonl` / `inctrace -addr ...`.
	cmdBreakdown(args)
}
