// Command incbench regenerates the tables and figures of the INCEPTIONN
// paper's evaluation section.
//
// Usage:
//
//	incbench -list
//	incbench -run fig12
//	incbench -run all [-full] [-seed N]
//	incbench -strategy switch
//	incbench -simtrace sim.jsonl [-sim-strategy ring|switch] [-sim-workers 4] [-sim-straggle 2:5ms]
//	incbench -bench7 bench/BENCH_7.json
//
// The -simtrace mode writes a fluid-flow-simulated gradient exchange
// (ring, or the in-network switch reduction) as a span trace in the same
// schema a real run emits, so `inctrace blame` and `inctrace calibrate
// -measured run.jsonl -sim sim.jsonl` work on it directly. The -bench7
// mode emits switch-vs-ring-vs-WA exchange times at 4/8/16 nodes, gated
// on the switch beating the worker-aggregator incast at >= 8 nodes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/eventsim"
	"inceptionn/internal/experiments"
	"inceptionn/internal/fault"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
)

// parseSimStraggle parses "node:dur[,node:dur...]" (e.g. "2:5ms") into
// per-node extra compute seconds.
func parseSimStraggle(spec string, workers int) ([]float64, error) {
	delays := make([]float64, workers)
	if spec == "" {
		return delays, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -sim-straggle entry %q, want node:duration", part)
		}
		node, err := strconv.Atoi(kv[0])
		if err != nil || node < 0 || node >= workers {
			return nil, fmt.Errorf("bad -sim-straggle node %q (workers=%d)", kv[0], workers)
		}
		d, err := time.ParseDuration(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad -sim-straggle duration %q: %v", kv[1], err)
		}
		delays[node] = d.Seconds()
	}
	return delays, nil
}

// simTraceConfig carries the -sim-* knobs of the -simtrace mode.
type simTraceConfig struct {
	strategy   string // "ring" or "switch"
	workers    int
	iters      int
	bytes      int64
	compute    float64
	straggle   string
	switchMem  int64   // switch strategy: on-switch buffer bytes
	switchRate float64 // switch strategy: combine bytes/s (0 = line rate)
}

// runSimTrace simulates -sim-iters gradient exchanges of the selected
// strategy with the fluid-flow event simulator and writes the spans as
// trace JSONL.
func runSimTrace(out string, c simTraceConfig) error {
	if c.workers < 2 {
		return fmt.Errorf("-sim-workers must be >= 2, got %d", c.workers)
	}
	delays, err := parseSimStraggle(c.straggle, c.workers)
	if err != nil {
		return err
	}
	np := netsim.Default10GbE()
	p := eventsim.Params{
		LineRate:  np.LineRate,
		StreamCap: np.StreamEfficiency * np.LineRate,
		Latency:   np.Latency,
	}

	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 18)
	rec := obs.NewRecorder(reg, tr)
	var baseNs int64
	totalSec := 0.0
	for iter := 0; iter < c.iters; iter++ {
		var dur float64
		switch c.strategy {
		case "ring":
			blockBytes := float64(netsim.RingBlockBytes(c.bytes, c.workers))
			dur = eventsim.RingTraceDelays(p, c.workers, blockBytes, blockBytes/np.SumRate,
				c.compute, delays, rec, iter, baseNs)
		case "switch":
			mem := c.switchMem
			if mem <= 0 {
				mem = 1 << 20
			}
			rate := c.switchRate
			if rate <= 0 {
				rate = np.LineRate
			}
			dur = eventsim.SwitchTraceDelays(p, c.workers, float64(c.bytes), float64(mem),
				1/rate, c.compute, delays, rec, iter, baseNs)
		default:
			return fmt.Errorf("unknown -sim-strategy %q (want ring or switch)", c.strategy)
		}
		baseNs += int64(dur * 1e9)
		totalSec += dur
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	meta := obs.TraceMeta{Version: 1, Node: -1, Source: "sim"}
	if err := obs.WriteSpansJSONL(f, meta, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("simtrace: %s, %d workers x %d iters (%d B gradients) -> %s (%d spans, %.3fs simulated)\n",
		c.strategy, c.workers, c.iters, c.bytes, out, len(tr.Snapshot()), totalSec)
	blameHint := ""
	if c.strategy == "switch" {
		blameHint = fmt.Sprintf(" -switch-node %d", c.workers)
	}
	fmt.Printf("  analyse: inctrace blame%s %s | inctrace calibrate -measured run.jsonl -sim %s\n",
		blameHint, out, out)
	return nil
}

// bench7Result is one strategy-vs-strategy exchange-time sample of
// bench/BENCH_7.json.
type bench7Result struct {
	Nodes         int     `json:"nodes"`
	WASeconds     float64 `json:"wa_seconds"`
	RingSeconds   float64 `json:"ring_seconds"`
	SwitchSeconds float64 `json:"switch_seconds"`
	SwitchVsWA    float64 `json:"switch_vs_wa_speedup"`
	SwitchVsRing  float64 `json:"switch_vs_ring_speedup"`
}

// runBench7 writes the PR 7 benchmark artifact: closed-form exchange
// times of WA vs ring vs in-network switch at 4/8/16 simulated nodes on
// AlexNet-scale gradients, gated on the switch beating the
// worker-aggregator incast at >= 8 nodes.
func runBench7(out string, modelBytes int64) error {
	p := netsim.Default10GbE()
	var results []bench7Result
	failed := false
	for _, nodes := range []int{4, 8, 16} {
		wa := p.WorkerAggregator(nodes, modelBytes, netsim.Plain(modelBytes), netsim.Plain(modelBytes)).Total()
		ring := p.Ring(nodes, modelBytes, netsim.Plain(netsim.RingBlockBytes(modelBytes, nodes))).Total()
		sw := p.SwitchAllReduce(nodes, modelBytes, nil).Total()
		results = append(results, bench7Result{
			Nodes: nodes, WASeconds: wa, RingSeconds: ring, SwitchSeconds: sw,
			SwitchVsWA: wa / sw, SwitchVsRing: ring / sw,
		})
		fmt.Printf("bench7: %2d nodes  wa=%.3fs ring=%.3fs switch=%.3fs (switch %.2fx vs wa)\n",
			nodes, wa, ring, sw, wa/sw)
		if nodes >= 8 && sw >= wa {
			fmt.Fprintf(os.Stderr, "bench7: GATE FAILED at %d nodes: switch %.3fs >= wa %.3fs\n", nodes, sw, wa)
			failed = true
		}
	}
	doc := struct {
		Bench      string         `json:"bench"`
		ModelBytes int64          `json:"model_bytes"`
		Gate       string         `json:"gate"`
		Pass       bool           `json:"pass"`
		Results    []bench7Result `json:"results"`
	}{
		Bench:      "switch-vs-wa-vs-ring exchange time (netsim closed form, 10GbE)",
		ModelBytes: modelBytes,
		Gate:       "switch beats worker-aggregator incast at >= 8 nodes",
		Pass:       !failed,
		Results:    results,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench7: wrote %s\n", out)
	if failed {
		return fmt.Errorf("switch strategy did not beat WA at >= 8 nodes")
	}
	return nil
}

// runBench8 writes the PR 8 benchmark artifact: the cost of the
// self-healing switch collective's mid-run fallback to the ring, gated
// three ways — the fluid-flow model's degraded (post-fallback) iteration
// must stay within 1.15x a bare ring iteration, the measured degraded
// band on the real runner must too, and a silently stalled switch must
// be detected within 2x the configured step deadline.
func runBench8(out string) error {
	const workers = 4

	// Model: fallback cost on the fluid-flow simulator at 10GbE,
	// AlexNet-scale gradients, 16 GB/s snapshot memcpy.
	np := netsim.Default10GbE()
	p := eventsim.Params{
		LineRate:  np.LineRate,
		StreamCap: np.StreamEfficiency * np.LineRate,
		Latency:   np.Latency,
	}
	modelBytes := float64(models.AlexNet.ParamBytes)
	const modelStepTimeout = 0.25
	mc := eventsim.SwitchFallbackCost(p, workers, modelBytes, 1<<20, 1/np.LineRate, modelStepTimeout, 1.0/16e9, 1)
	bareRing := eventsim.RingTime(p, workers, modelBytes/workers, 0)
	modelRatio := mc.DegradedIterSeconds / bareRing
	fmt.Printf("bench8: model  degraded=%.4fs ring=%.4fs (%.3fx), trip penalty=%.3fs\n",
		mc.DegradedIterSeconds, bareRing, modelRatio, mc.TotalPenaltySeconds)

	// Measured: both runners over the same loopback-TCP fabric, switch
	// killed during the very first multicast (transport self-report, so
	// detection adds ~nothing and the healed run's wall clock is the
	// degraded band itself: 30 ring iterations plus the one replayed).
	trainDS, testDS := data.NewDigits(4000, 1), data.NewDigits(500, 99)
	base := train.Options{
		Workers:      workers,
		BatchPerNode: 16,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
		EvalSamples:  64,
	}
	const iters = 30
	bound := fpcodec.MustBound(10) // codec unused: both runs are uncompressed

	ringO := base
	t0 := time.Now()
	ringRes, err := train.RunRingTCP(models.NewHDCSmall, trainDS, testDS, iters, ringO, bound)
	if err != nil {
		return fmt.Errorf("bench8 ring baseline: %w", err)
	}
	ringWall := time.Since(t0).Seconds()

	healO := base
	healO.Algo = train.SwitchReduce
	healO.SwitchFallback = true
	healO.StepTimeout = 5 * time.Second
	healO.Chaos = &fault.Config{Seed: 8, CrashAfter: map[int]uint64{workers: 2}}
	t0 = time.Now()
	healRes, err := train.RunSwitchTCP(models.NewHDCSmall, trainDS, testDS, iters, healO, bound)
	if err != nil {
		return fmt.Errorf("bench8 healed run: %w", err)
	}
	healWall := time.Since(t0).Seconds()
	if healRes.Fallbacks != 1 {
		return fmt.Errorf("bench8 healed run: fallbacks = %d, want 1", healRes.Fallbacks)
	}
	for i := range healRes.FinalWeights {
		if healRes.FinalWeights[i] != ringRes.FinalWeights[i] {
			return fmt.Errorf("bench8 healed run diverged from the ring at weight %d", i)
		}
	}
	measuredRatio := (healWall / float64(iters+1)) / (ringWall / float64(iters))
	fmt.Printf("bench8: run    degraded=%.4fs/iter ring=%.4fs/iter (%.3fx), bit-exact after healing\n",
		healWall/float64(iters+1), ringWall/float64(iters), measuredRatio)

	// Measured detection latency: a silent stall (partitioned uplink, no
	// self-report anywhere) must confirm within two step deadlines.
	detO := base
	detO.Algo = train.SwitchReduce
	detO.SwitchFallback = true
	detO.StepTimeout = 250 * time.Millisecond
	detO.Chaos = &fault.Config{Seed: 9, Links: map[fault.Link]fault.LinkFaults{
		{Src: 1, Dst: workers}: fault.Partition(2),
	}}
	detRes, err := train.Run(models.NewHDCSmall, trainDS, testDS, 8, detO)
	if err != nil {
		return fmt.Errorf("bench8 detection run: %w", err)
	}
	if detRes.Fallbacks != 1 {
		return fmt.Errorf("bench8 detection run: fallbacks = %d, want 1", detRes.Fallbacks)
	}
	detectGate := 2 * detO.StepTimeout.Seconds()
	fmt.Printf("bench8: detect stall confirmed in %.3fs (gate %.3fs) — %s\n",
		detRes.FallbackDetectSeconds, detectGate, detRes.FallbackCause)

	var fails []string
	if modelRatio > 1.15 {
		fails = append(fails, fmt.Sprintf("model degraded/ring ratio %.3f > 1.15", modelRatio))
	}
	if measuredRatio > 1.15 {
		fails = append(fails, fmt.Sprintf("measured degraded/ring ratio %.3f > 1.15", measuredRatio))
	}
	if detRes.FallbackDetectSeconds > detectGate {
		fails = append(fails, fmt.Sprintf("detection %.3fs > 2x step timeout %.3fs", detRes.FallbackDetectSeconds, detectGate))
	}
	doc := struct {
		Bench                string  `json:"bench"`
		Gate                 string  `json:"gate"`
		Pass                 bool    `json:"pass"`
		ModelDegradedSec     float64 `json:"model_degraded_iter_seconds"`
		ModelRingSec         float64 `json:"model_ring_iter_seconds"`
		ModelRatio           float64 `json:"model_degraded_vs_ring"`
		ModelTripPenaltySec  float64 `json:"model_trip_penalty_seconds"`
		MeasuredDegradedSec  float64 `json:"measured_degraded_iter_seconds"`
		MeasuredRingSec      float64 `json:"measured_ring_iter_seconds"`
		MeasuredRatio        float64 `json:"measured_degraded_vs_ring"`
		MeasuredDetectSec    float64 `json:"measured_detect_seconds"`
		DetectGateSec        float64 `json:"detect_gate_seconds"`
		MeasuredFallbackWhy  string  `json:"measured_fallback_cause"`
		BitExactAfterHealing bool    `json:"bit_exact_after_healing"`
	}{
		Bench:                "switch->ring fallback cost (eventsim model + measured self-healing runner)",
		Gate:                 "degraded iteration <= 1.15x plain ring (model and measured); stall detected <= 2x step timeout",
		Pass:                 len(fails) == 0,
		ModelDegradedSec:     mc.DegradedIterSeconds,
		ModelRingSec:         bareRing,
		ModelRatio:           modelRatio,
		ModelTripPenaltySec:  mc.TotalPenaltySeconds,
		MeasuredDegradedSec:  healWall / float64(iters+1),
		MeasuredRingSec:      ringWall / float64(iters),
		MeasuredRatio:        measuredRatio,
		MeasuredDetectSec:    detRes.FallbackDetectSeconds,
		DetectGateSec:        detectGate,
		MeasuredFallbackWhy:  detRes.FallbackCause,
		BitExactAfterHealing: true,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench8: wrote %s\n", out)
	if len(fails) > 0 {
		return fmt.Errorf("bench8 gate failed: %s", strings.Join(fails, "; "))
	}
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "experiment to run (name or 'all')")
	full := flag.Bool("full", false, "full-scale training runs (slower, closer to the paper)")
	seed := flag.Int64("seed", 42, "deterministic seed for all experiments")
	selftest := flag.Bool("selftest", false, "run cross-component consistency checks and exit")
	simtrace := flag.String("simtrace", "", "write a simulated gradient-exchange span trace (JSONL) to this file and exit")
	simStrategy := flag.String("sim-strategy", "ring", "simtrace: exchange strategy (ring or switch)")
	simWorkers := flag.Int("sim-workers", 4, "simtrace: worker count")
	simIters := flag.Int("sim-iters", 10, "simtrace: iterations to simulate")
	simBytes := flag.Int64("sim-bytes", 4<<20, "simtrace: gradient bytes per node per iteration")
	simCompute := flag.Float64("sim-compute", 2e-3, "simtrace: per-node compute seconds per iteration")
	simStraggle := flag.String("sim-straggle", "", "simtrace: extra compute per node, e.g. '2:5ms' or '1:2ms,3:1ms'")
	simSwitchMem := flag.Int64("sim-switch-mem", 1<<20, "simtrace switch: on-switch aggregation buffer bytes")
	simSwitchRate := flag.Float64("sim-switch-rate", 0, "simtrace switch: combine throughput bytes/s (0 = line rate)")
	strategy := flag.String("strategy", "", "shorthand for -run switch etc: print one strategy comparison (e.g. 'switch')")
	bench7 := flag.String("bench7", "", "write switch-vs-ring-vs-WA exchange benchmarks (JSON) to this file and exit")
	bench7Bytes := flag.Int64("bench7-bytes", 0, "bench7: gradient bytes (0 = AlexNet's 233 MB)")
	bench8 := flag.String("bench8", "", "write the switch->ring fallback cost benchmark (JSON) to this file and exit")
	bench10 := flag.String("bench10", "", "write the auto-tuner pick-vs-brute-force benchmark (JSON) to this file and exit")
	flag.Parse()

	if *simtrace != "" {
		err := runSimTrace(*simtrace, simTraceConfig{
			strategy: *simStrategy, workers: *simWorkers, iters: *simIters,
			bytes: *simBytes, compute: *simCompute, straggle: *simStraggle,
			switchMem: *simSwitchMem, switchRate: *simSwitchRate,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *bench7 != "" {
		bytes := *bench7Bytes
		if bytes <= 0 {
			bytes = models.AlexNet.ParamBytes
		}
		if err := runBench7(*bench7, bytes); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *bench8 != "" {
		if err := runBench8(*bench8); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *bench10 != "" {
		if err := runBench10(*bench10); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *strategy != "" {
		// -strategy NAME runs the matching comparison experiment (today:
		// the in-network switch strategy).
		e, ok := experiments.Lookup(*strategy)
		if !ok {
			fmt.Fprintf(os.Stderr, "incbench: unknown strategy %q; -list shows options\n", *strategy)
			os.Exit(2)
		}
		if err := e.Run(os.Stdout, experiments.Options{Quick: !*full, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}

	if *selftest {
		fmt.Println("incbench self-test:")
		if err := experiments.SelfTest(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.Registry()
	} else {
		for _, name := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "incbench: unknown experiment %q; -list shows options\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		fmt.Printf("\n################ %s: %s ################\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
	}
}
