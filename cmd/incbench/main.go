// Command incbench regenerates the tables and figures of the INCEPTIONN
// paper's evaluation section.
//
// Usage:
//
//	incbench -list
//	incbench -run fig12
//	incbench -run all [-full] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inceptionn/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "experiment to run (name or 'all')")
	full := flag.Bool("full", false, "full-scale training runs (slower, closer to the paper)")
	seed := flag.Int64("seed", 42, "deterministic seed for all experiments")
	selftest := flag.Bool("selftest", false, "run cross-component consistency checks and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}

	if *selftest {
		fmt.Println("incbench self-test:")
		if err := experiments.SelfTest(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.Registry()
	} else {
		for _, name := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "incbench: unknown experiment %q; -list shows options\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		fmt.Printf("\n################ %s: %s ################\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
	}
}
