// Command incbench regenerates the tables and figures of the INCEPTIONN
// paper's evaluation section.
//
// Usage:
//
//	incbench -list
//	incbench -run fig12
//	incbench -run all [-full] [-seed N]
//	incbench -simtrace sim.jsonl [-sim-workers 4] [-sim-straggle 2:5ms]
//
// The -simtrace mode writes a fluid-flow-simulated ring exchange as a
// span trace in the same schema a real run emits, so `inctrace blame`
// and `inctrace calibrate -measured run.jsonl -sim sim.jsonl` work on
// it directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"inceptionn/internal/eventsim"
	"inceptionn/internal/experiments"
	"inceptionn/internal/netsim"
	"inceptionn/internal/obs"
)

// parseSimStraggle parses "node:dur[,node:dur...]" (e.g. "2:5ms") into
// per-node extra compute seconds.
func parseSimStraggle(spec string, workers int) ([]float64, error) {
	delays := make([]float64, workers)
	if spec == "" {
		return delays, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad -sim-straggle entry %q, want node:duration", part)
		}
		node, err := strconv.Atoi(kv[0])
		if err != nil || node < 0 || node >= workers {
			return nil, fmt.Errorf("bad -sim-straggle node %q (workers=%d)", kv[0], workers)
		}
		d, err := time.ParseDuration(kv[1])
		if err != nil {
			return nil, fmt.Errorf("bad -sim-straggle duration %q: %v", kv[1], err)
		}
		delays[node] = d.Seconds()
	}
	return delays, nil
}

// runSimTrace simulates -sim-iters ring all-reduce iterations with the
// fluid-flow event simulator and writes the spans as trace JSONL.
func runSimTrace(out string, workers, iters int, bytes int64, compute float64, straggle string) error {
	if workers < 2 {
		return fmt.Errorf("-sim-workers must be >= 2, got %d", workers)
	}
	delays, err := parseSimStraggle(straggle, workers)
	if err != nil {
		return err
	}
	np := netsim.Default10GbE()
	p := eventsim.Params{
		LineRate:  np.LineRate,
		StreamCap: np.StreamEfficiency * np.LineRate,
		Latency:   np.Latency,
	}
	blockBytes := float64(bytes) / float64(workers)
	sumDelayPerStep := blockBytes / np.SumRate

	reg := obs.NewRegistry()
	tr := obs.NewTracer(1 << 18)
	rec := obs.NewRecorder(reg, tr)
	var baseNs int64
	totalSec := 0.0
	for iter := 0; iter < iters; iter++ {
		dur := eventsim.RingTraceDelays(p, workers, blockBytes, sumDelayPerStep, compute, delays, rec, iter, baseNs)
		baseNs += int64(dur * 1e9)
		totalSec += dur
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	meta := obs.TraceMeta{Version: 1, Node: -1, Source: "sim"}
	if err := obs.WriteSpansJSONL(f, meta, tr.Snapshot()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("simtrace: %d workers x %d iters (%d B gradients) -> %s (%d spans, %.3fs simulated)\n",
		workers, iters, bytes, out, len(tr.Snapshot()), totalSec)
	fmt.Printf("  analyse: inctrace blame %s | inctrace calibrate -measured run.jsonl -sim %s\n", out, out)
	return nil
}

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "experiment to run (name or 'all')")
	full := flag.Bool("full", false, "full-scale training runs (slower, closer to the paper)")
	seed := flag.Int64("seed", 42, "deterministic seed for all experiments")
	selftest := flag.Bool("selftest", false, "run cross-component consistency checks and exit")
	simtrace := flag.String("simtrace", "", "write a simulated ring-exchange span trace (JSONL) to this file and exit")
	simWorkers := flag.Int("sim-workers", 4, "simtrace: ring size")
	simIters := flag.Int("sim-iters", 10, "simtrace: iterations to simulate")
	simBytes := flag.Int64("sim-bytes", 4<<20, "simtrace: gradient bytes per node per iteration")
	simCompute := flag.Float64("sim-compute", 2e-3, "simtrace: per-node compute seconds per iteration")
	simStraggle := flag.String("sim-straggle", "", "simtrace: extra compute per node, e.g. '2:5ms' or '1:2ms,3:1ms'")
	flag.Parse()

	if *simtrace != "" {
		if err := runSimTrace(*simtrace, *simWorkers, *simIters, *simBytes, *simCompute, *simStraggle); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		return
	}

	opts := experiments.Options{Quick: !*full, Seed: *seed}

	if *selftest {
		fmt.Println("incbench self-test:")
		if err := experiments.SelfTest(os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "incbench:", err)
			os.Exit(1)
		}
		return
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.Registry()
	} else {
		for _, name := range strings.Split(*run, ",") {
			e, ok := experiments.Lookup(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "incbench: unknown experiment %q; -list shows options\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		fmt.Printf("\n################ %s: %s ################\n", e.Name, e.Title)
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "incbench: %s failed: %v\n", e.Name, err)
			os.Exit(1)
		}
	}
}
