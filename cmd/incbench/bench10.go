package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"inceptionn/internal/data"
	"inceptionn/internal/fpcodec"
	"inceptionn/internal/models"
	"inceptionn/internal/netsim"
	"inceptionn/internal/nic"
	"inceptionn/internal/obs"
	"inceptionn/internal/opt"
	"inceptionn/internal/train"
	"inceptionn/internal/tune"
)

// bench10 closes the observe→model→tune loop under a benchmark gate: it
// auto-tunes on the in-process fabric, brute-force measures every plan
// candidate the planner ranked, and fails unless
//
//  1. the tuner's pick measures within 10% of the brute-force best, and
//  2. the fitted model tracks a pooled independent holdout's
//     communication phases within 15% (one refit retry, mirroring what a
//     deployed tuner would do after probing an atypical machine state).
//
// The per-candidate measured times land in the report's "benchmarks"
// list, so `benchjson -diff` gates regressions against the checked-in
// baseline like every other bench target.

const (
	bench10Workers    = 4
	bench10Iters      = 16 // per measured candidate run
	bench10Warmup     = 2
	bench10PickSlack  = 1.10
	bench10MaxRelErr  = 0.15
	bench10HoldoutN   = 3 // pooled holdout runs per validation batch
	bench10HoldoutIts = 24
)

type bench10Candidate struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	PredIterSec float64 `json:"pred_iter_seconds"`
	Chosen      bool    `json:"chosen,omitempty"`
}

func bench10Options() train.Options {
	return train.Options{
		Workers:      bench10Workers,
		BatchPerNode: 8,
		Schedule:     opt.StepSchedule{Base: 0.02, Factor: 5, Every: 200},
		Momentum:     0.9,
		WeightDecay:  0.00005,
		Seed:         42,
		Processor:    nic.Processor{Bound: fpcodec.MustBound(10)},
	}
}

// bench10Measure runs one candidate for bench10Iters iterations and
// returns the measured post-warmup seconds per iteration, best of two
// runs (the min is the standard robust statistic against run-level
// scheduler drift).
func bench10Measure(build train.Builder, trainDS, testDS data.Dataset, o train.Options) (float64, error) {
	best := 0.0
	for attempt := 0; attempt < 2; attempt++ {
		t0 := time.Now()
		if _, err := train.Run(build, trainDS, testDS, bench10Iters, o); err != nil {
			return 0, err
		}
		sec := time.Since(t0).Seconds() / bench10Iters
		if best == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// bench10Holdout measures pooled fresh plain-ring runs and returns the
// fitted model's max communication-phase |rel err| against them.
func bench10Holdout(build train.Builder, trainDS, testDS data.Dataset, o train.Options, fit *tune.Fitted, modelBytes int64) (float64, error) {
	var spans []obs.Span
	for r := 0; r < bench10HoldoutN; r++ {
		vo := o
		vo.Algo = train.Ring
		vo.ChunkSize = 0
		vo.Compress = false
		vo.Processor = nil
		vtr := obs.NewTracer(1 << 17)
		vo.Obs = obs.NewRecorder(obs.NewRegistry(), vtr)
		if _, err := train.Run(build, trainDS, testDS, bench10HoldoutIts, vo); err != nil {
			return 0, err
		}
		for _, sp := range vtr.Snapshot() {
			if sp.Iter < bench10Warmup {
				continue
			}
			sp.Iter = sp.Iter - bench10Warmup + r*(bench10HoldoutIts-bench10Warmup)
			spans = append(spans, sp)
		}
	}
	holdout := tune.Sample{
		Workload: tune.Workload{
			Workers:    bench10Workers,
			ModelBytes: modelBytes,
			Strategy:   "ring",
			Iters:      bench10HoldoutN * (bench10HoldoutIts - bench10Warmup),
		},
		Spans: spans,
	}
	cal, maxErr := fit.Validate(holdout)
	if cal == nil {
		return 0, fmt.Errorf("holdout validation produced no calibration")
	}
	return maxErr, nil
}

func runBench10(out string) error {
	build := models.NewHDCSmall
	trainDS := data.NewDigits(512, 1)
	testDS := data.NewDigits(64, 99)
	o := bench10Options()

	// Observe → model → plan, with refit retries on a bad holdout (a miss
	// means the probes sampled an atypical machine state, e.g. right
	// after a heavyweight test run saturated the box).
	var res *tune.AutoResult
	var holdErr float64
	for attempt := 0; attempt < 3; attempt++ {
		r, _, err := tune.AutoTune(build, trainDS, testDS, o, tune.AutoOptions{})
		if err != nil {
			return fmt.Errorf("bench10 autotune: %w", err)
		}
		res = r
		holdErr, err = bench10Holdout(build, trainDS, testDS, o, res.Fit, res.Workload.ModelBytes)
		if err != nil {
			return fmt.Errorf("bench10 holdout: %w", err)
		}
		fmt.Printf("bench10: holdout comm max |rel err| = %.3f (fit residual %.3f, attempt %d)\n",
			holdErr, res.Fit.MaxCommRelErr, attempt+1)
		if holdErr <= bench10MaxRelErr {
			break
		}
	}

	// Brute force: measure every ranked candidate on the real runner.
	var cands []bench10Candidate
	bestSec, chosenSec := 0.0, 0.0
	bestName := ""
	for _, p := range res.Plans {
		co := tune.Apply(o, p)
		sec, err := bench10Measure(build, trainDS, testDS, co)
		if err != nil {
			return fmt.Errorf("bench10 candidate %s: %w", p.PlanOption, err)
		}
		name := "Bench10/" + strings.NewReplacer("/", "_", " ", "").Replace(p.PlanOption.String())
		chosen := p.PlanOption == res.Chosen.PlanOption
		cands = append(cands, bench10Candidate{
			Name:        name,
			Iterations:  bench10Iters,
			NsPerOp:     sec * 1e9,
			PredIterSec: p.PredIterSec,
			Chosen:      chosen,
		})
		if bestSec == 0 || sec < bestSec {
			bestSec, bestName = sec, p.PlanOption.String()
		}
		if chosen {
			chosenSec = sec
		}
		fmt.Printf("bench10: %-36s measured %.4fs/iter predicted %.4fs/iter%s\n",
			p.PlanOption, sec, p.PredIterSec, map[bool]string{true: "  <- chosen", false: ""}[chosen])
	}
	if chosenSec == 0 {
		return fmt.Errorf("bench10: chosen plan %s not among measured candidates", res.Chosen.PlanOption)
	}

	// The top plans are often predicted within 1-2% of each other, so the
	// sweep's min-of-2 can rank them by scheduler noise alone. When the
	// quick ratio misses the gate, re-measure the two contenders head to
	// head, alternating runs so load drift hits both, and gate on the
	// deeper minima.
	if chosenSec/bestSec > bench10PickSlack && bestName != res.Chosen.PlanOption.String() {
		fmt.Printf("bench10: quick ratio %.3f over gate — head-to-head refinement of %s vs %s\n",
			chosenSec/bestSec, res.Chosen.PlanOption, bestName)
		var bestPlan tune.Plan
		for _, p := range res.Plans {
			if p.PlanOption.String() == bestName {
				bestPlan = p
			}
		}
		for round := 0; round < 3; round++ {
			cs, err := bench10Measure(build, trainDS, testDS, tune.Apply(o, res.Chosen))
			if err != nil {
				return err
			}
			bs, err := bench10Measure(build, trainDS, testDS, tune.Apply(o, bestPlan))
			if err != nil {
				return err
			}
			if cs < chosenSec {
				chosenSec = cs
			}
			if bs < bestSec {
				bestSec = bs
			}
		}
		fmt.Printf("bench10: refined chosen %.4fs/iter vs best %.4fs/iter\n", chosenSec, bestSec)
	}

	pickRatio := chosenSec / bestSec
	pass := pickRatio <= bench10PickSlack && holdErr <= bench10MaxRelErr
	fmt.Printf("bench10: pick %s at %.3fx of best measured (%s), holdout rel err %.3f — %s\n",
		res.Chosen.PlanOption, pickRatio, bestName, holdErr,
		map[bool]string{true: "PASS", false: "FAIL"}[pass])

	doc := struct {
		Bench         string             `json:"bench"`
		Gate          string             `json:"gate"`
		Pass          bool               `json:"pass"`
		Chosen        string             `json:"chosen"`
		ChosenSec     float64            `json:"chosen_measured_seconds"`
		Best          string             `json:"best"`
		BestSec       float64            `json:"best_measured_seconds"`
		PickRatio     float64            `json:"pick_ratio"`
		HoldoutRelErr float64            `json:"holdout_max_comm_rel_err"`
		FitResidual   float64            `json:"fit_max_comm_rel_err"`
		Params        netsim.Params      `json:"fitted_params"`
		Benchmarks    []bench10Candidate `json:"benchmarks"`
	}{
		Bench:         "auto-tuner pick vs brute-force measured plan sweep (hdc-small, 4 workers, in-process fabric)",
		Gate:          fmt.Sprintf("pick within %.2fx of best measured; pooled holdout comm |rel err| <= %.2f", bench10PickSlack, bench10MaxRelErr),
		Pass:          pass,
		Chosen:        res.Chosen.PlanOption.String(),
		ChosenSec:     chosenSec,
		Best:          bestName,
		BestSec:       bestSec,
		PickRatio:     pickRatio,
		HoldoutRelErr: holdErr,
		FitResidual:   res.Fit.MaxCommRelErr,
		Params:        res.Fit.Params,
		Benchmarks:    cands,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench10: wrote %s\n", out)
	if !pass {
		return fmt.Errorf("bench10 gate failed: pick ratio %.3f (max %.2f), holdout rel err %.3f (max %.2f)",
			pickRatio, bench10PickSlack, holdErr, bench10MaxRelErr)
	}
	return nil
}
