// Command inccompress runs the INCEPTIONN lossy codec over a file of raw
// little-endian float32 values (or a generated gradient-shaped stream) and
// reports the compression ratio, bitwidth distribution, and error bound
// compliance.
//
// Compressed files written with -out carry a 16-byte header
// (magic "INCF", bound exponent, value count, exact bit length) so they are
// self-describing; -decompress restores the float32 payload.
//
// Usage:
//
//	inccompress -in gradients.f32 -bound 10 -out gradients.incf
//	inccompress -gen 1000000 -bound 8
//	inccompress -decompress gradients.incf -out restored.f32
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"inceptionn/internal/bitio"
	"inceptionn/internal/fpcodec"
)

func main() {
	in := flag.String("in", "", "input file of raw little-endian float32 values")
	gen := flag.Int("gen", 0, "generate N gradient-shaped values instead of reading a file")
	boundExp := flag.Int("bound", 10, "error bound exponent E (bound 2^-E)")
	seed := flag.Int64("seed", 1, "seed for -gen")
	out := flag.String("out", "", "optional output file (compressed container, or raw floats with -decompress)")
	decompress := flag.String("decompress", "", "decompress a container written by -out and exit")
	flag.Parse()

	if *decompress != "" {
		if err := runDecompress(*decompress, *out); err != nil {
			fmt.Fprintln(os.Stderr, "inccompress:", err)
			os.Exit(1)
		}
		return
	}

	bound, err := fpcodec.NewBound(*boundExp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inccompress:", err)
		os.Exit(2)
	}

	var vals []float32
	switch {
	case *gen > 0:
		rng := rand.New(rand.NewSource(*seed))
		vals = make([]float32, *gen)
		for i := range vals {
			if rng.Intn(10) == 0 {
				vals[i] = float32(rng.NormFloat64() * 0.1)
			} else {
				vals[i] = float32(rng.NormFloat64() * 0.002)
			}
		}
	case *in != "":
		raw, err := os.ReadFile(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "inccompress:", err)
			os.Exit(1)
		}
		if len(raw)%4 != 0 {
			fmt.Fprintf(os.Stderr, "inccompress: %s is %d bytes, not float32-aligned\n", *in, len(raw))
			os.Exit(1)
		}
		vals = make([]float32, len(raw)/4)
		for i := range vals {
			vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	default:
		fmt.Fprintln(os.Stderr, "inccompress: need -in FILE or -gen N")
		os.Exit(2)
	}

	w := bitio.NewWriter(len(vals))
	fpcodec.CompressStream(w, vals, bound)
	dec := make([]float32, len(vals))
	if err := fpcodec.DecompressStream(bitio.NewReader(w.Bytes(), w.Len()), dec, bound); err != nil {
		fmt.Fprintln(os.Stderr, "inccompress: roundtrip:", err)
		os.Exit(1)
	}

	var st fpcodec.TagStats
	st.Observe(vals, bound)
	var maxErr float64
	violations := 0
	for i := range vals {
		if fpcodec.TagOf(vals[i], bound) == fpcodec.TagNone {
			continue
		}
		e := math.Abs(float64(dec[i]) - float64(vals[i]))
		if e > maxErr {
			maxErr = e
		}
		if e > bound.MaxError() {
			violations++
		}
	}

	fmt.Printf("values:            %d\n", len(vals))
	fmt.Printf("bound:             %v (max error %.3e)\n", bound, bound.MaxError())
	fmt.Printf("uncompressed:      %d bytes\n", 4*len(vals))
	fmt.Printf("compressed:        %d bytes (%d bits)\n", len(w.Bytes()), w.Len())
	fmt.Printf("ratio:             %.2fx\n", fpcodec.Ratio(vals, bound))
	fmt.Printf("observed max err:  %.3e (violations: %d)\n", maxErr, violations)
	fmt.Printf("bitwidth classes:  2b %.1f%%  10b %.1f%%  18b %.1f%%  34b %.1f%%\n",
		100*st.Fraction(fpcodec.TagZero), 100*st.Fraction(fpcodec.Tag8),
		100*st.Fraction(fpcodec.Tag16), 100*st.Fraction(fpcodec.TagNone))

	if *out != "" {
		container := make([]byte, 16+len(w.Bytes()))
		binary.LittleEndian.PutUint32(container[0:], containerMagic)
		binary.LittleEndian.PutUint32(container[4:], uint32(bound.Exp()))
		binary.LittleEndian.PutUint32(container[8:], uint32(len(vals)))
		binary.LittleEndian.PutUint32(container[12:], uint32(w.Len()))
		copy(container[16:], w.Bytes())
		if err := os.WriteFile(*out, container, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "inccompress:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", *out, len(container))
	}
	if violations > 0 {
		os.Exit(1)
	}
}

const containerMagic = 0x494E4346 // "INCF"

// runDecompress restores a container to raw little-endian float32 bytes.
func runDecompress(path, out string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) < 16 || binary.LittleEndian.Uint32(raw) != containerMagic {
		return fmt.Errorf("%s is not an inccompress container", path)
	}
	bound, err := fpcodec.NewBound(int(binary.LittleEndian.Uint32(raw[4:])))
	if err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(raw[8:]))
	bits := int(binary.LittleEndian.Uint32(raw[12:]))
	if bits > 8*(len(raw)-16) {
		return fmt.Errorf("%s declares %d bits with %d payload bytes", path, bits, len(raw)-16)
	}
	vals := make([]float32, count)
	if err := fpcodec.DecompressStream(bitio.NewReader(raw[16:], bits), vals, bound); err != nil {
		return err
	}
	buf := make([]byte, 4*count)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	if out == "" {
		fmt.Printf("decompressed %d values (bound %v); pass -out FILE to save\n", count, bound)
		return nil
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d values, bound %v)\n", out, count, bound)
	return nil
}
